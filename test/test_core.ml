module Ast = Qt_sql.Ast
module Analysis = Qt_sql.Analysis
module Cost = Qt_cost.Cost
module Plan = Qt_optimizer.Plan
module Offer = Qt_core.Offer
module Seller = Qt_core.Seller
module Plan_generator = Qt_core.Plan_generator
module Buyer_analyser = Qt_core.Buyer_analyser
module Trader = Qt_core.Trader
module Strategy = Qt_trading.Strategy
module Protocol = Qt_trading.Protocol

let quick = Helpers.quick
let parse = Helpers.parse
let params = Qt_cost.Params.default

(* ------------------------------------------------------------------ *)
(* Seller                                                               *)
(* ------------------------------------------------------------------ *)

let federation = Helpers.telecom_federation ~nodes:4 ~partitions:2 ()
let schema = federation.Qt_catalog.Federation.schema
let revenue = Helpers.revenue_query ()

let respond ?(config = Seller.default_config params) node_id q =
  let node = Qt_catalog.Federation.node federation node_id in
  Seller.respond config schema node ~requests:[ (q, 0.) ]

let test_seller_offers_partials () =
  let r = respond 0 revenue in
  Alcotest.(check bool) "has offers" true (r.Seller.offers <> []);
  let subsets =
    Qt_util.Listx.dedup ( = )
      (List.map (fun (o : Offer.t) -> o.subset) r.Seller.offers)
  in
  (* Node 0 holds slices of both relations: singletons and the pair. *)
  Alcotest.(check bool) "offers c" true (List.mem [ "c" ] subsets);
  Alcotest.(check bool) "offers il" true (List.mem [ "il" ] subsets);
  Alcotest.(check bool) "offers join" true (List.mem [ "c"; "il" ] subsets)

let test_seller_offer_properties_sane () =
  let r = respond 0 revenue in
  List.iter
    (fun (o : Offer.t) ->
      if o.props.total_time <= 0. then Alcotest.fail "non-positive time";
      if o.props.rows < 0. then Alcotest.fail "negative rows";
      if o.props.completeness <= 0. || o.props.completeness > 1. then
        Alcotest.failf "completeness out of range: %f" o.props.completeness;
      if o.quoted < o.true_cost -. 1e-9 then Alcotest.fail "quoted below cost";
      Alcotest.(check string)
        "lot id" (Analysis.signature revenue)
        (Analysis.Sig.to_string o.request_sig))
    r.Seller.offers

let test_seller_partial_completeness () =
  (* With 2 partitions, node 0 holds half of each relation: its offers
     cover about half the extent. *)
  let r = respond 0 revenue in
  let c_offer = List.find (fun (o : Offer.t) -> o.subset = [ "c" ]) r.Seller.offers in
  Alcotest.(check (float 0.01)) "half coverage" 0.5 c_offer.props.completeness

let test_seller_competitive_quotes_higher () =
  let coop = respond 0 revenue in
  let comp =
    respond
      ~config:
        {
          (Seller.default_config params) with
          Seller.strategy = Strategy.default_competitive;
        }
      0 revenue
  in
  List.iter2
    (fun (a : Offer.t) (b : Offer.t) ->
      Alcotest.(check bool) "markup applied" true (b.quoted > a.quoted))
    coop.Seller.offers comp.Seller.offers

let test_seller_respects_max_offers () =
  let config = { (Seller.default_config params) with Seller.max_offers_per_request = 2 } in
  let r = respond ~config 0 revenue in
  Alcotest.(check bool) "capped" true (List.length r.Seller.offers <= 2)

let test_seller_silent_when_irrelevant () =
  let q = parse "SELECT c.custname FROM customer c WHERE c.custid BETWEEN 0 AND 9" in
  (* Node 1 holds the second partition only. *)
  let holders =
    List.filter
      (fun (n : Qt_catalog.Node.t) ->
        Seller.respond (Seller.default_config params) schema n ~requests:[ (q, 0.) ]
        |> fun r -> r.Seller.offers <> [])
      federation.Qt_catalog.Federation.nodes
  in
  (* Only nodes whose customer slice intersects [0,9] may answer. *)
  List.iter
    (fun (n : Qt_catalog.Node.t) ->
      let ok =
        List.exists
          (fun (f : Qt_catalog.Fragment.t) ->
            f.rel = "customer" && Qt_util.Interval.mem 0 f.range)
          n.fragments
      in
      if not ok then Alcotest.failf "node %d offered irrelevant data" n.node_id)
    holders

let test_seller_scan_only_capability () =
  (* A scan-only node offers singleton SPJ pieces, never joins or
     aggregates, even when it holds everything needed. *)
  let fed =
    Helpers.telecom_federation ~nodes:4 ~partitions:2 ()
  in
  let base_node = Qt_catalog.Federation.node fed 0 in
  let weak =
    Qt_catalog.Node.make ~id:0 ~name:"weak"
      ~capabilities:Qt_catalog.Node.scan_only
      ~fragments:base_node.Qt_catalog.Node.fragments ()
  in
  let r =
    Seller.respond (Seller.default_config params)
      fed.Qt_catalog.Federation.schema weak ~requests:[ (revenue, 0.) ]
  in
  Alcotest.(check bool) "still offers something" true (r.Seller.offers <> []);
  List.iter
    (fun (o : Offer.t) ->
      Alcotest.(check int) "singletons only" 1 (List.length o.subset);
      Alcotest.(check bool) "no aggregates" false (Analysis.has_aggregate o.answers))
    r.Seller.offers

let test_qt_correct_with_scan_only_federation () =
  (* Every node is a thin data server: the buyer must do all joins and
     aggregation itself, and the answer must still be exact. *)
  let fed =
    Qt_sim.Generator.telecom ~customers:800 ~invoice_lines:4000 ~key_domain:800
      ~placement:{ Qt_sim.Generator.partitions = 2; replicas = 1 }
      ~capabilities_of:(fun _ -> Qt_catalog.Node.scan_only)
      ~nodes:4 ()
  in
  let outcome = Helpers.assert_qt_correct fed revenue in
  (* No remote piece may carry a join or an aggregate. *)
  List.iter
    (fun (r : Plan.remote) ->
      Alcotest.(check int) "remote scans only" 1
        (List.length r.Plan.query.Qt_sql.Ast.from);
      Alcotest.(check bool) "no remote aggregation" false
        (Analysis.has_aggregate r.Plan.query))
    (Plan.remote_leaves outcome.Trader.plan)

let test_qt_mixed_capabilities_prefers_capable () =
  (* Half the federation is scan-only; with replicas the capable copies
     should win the pre-aggregated lots, keeping the plan near-optimal. *)
  (* Placement puts partition p on nodes p and p+2; keeping nodes 0 and 1
     capable leaves every partition exactly one full-capability replica. *)
  let capabilities_of id =
    if id >= 2 then Qt_catalog.Node.scan_only
    else Qt_catalog.Node.full_capabilities
  in
  let fed =
    Qt_sim.Generator.telecom ~customers:800 ~invoice_lines:4000 ~key_domain:800
      ~placement:{ Qt_sim.Generator.partitions = 2; replicas = 2 }
      ~capabilities_of ~nodes:4 ()
  in
  let full_fed =
    Helpers.telecom_federation ~nodes:4 ~partitions:2 ~replicas:2 ()
  in
  let outcome = Helpers.assert_qt_correct fed revenue in
  match Trader.optimize (Trader.default_config params) full_fed revenue with
  | Error e -> Alcotest.fail e
  | Ok full ->
    Alcotest.(check bool) "mixed federation near full-capability cost" true
      (Cost.response outcome.Trader.cost
      <= 1.05 *. Cost.response full.Trader.cost +. 1e-9)

(* ------------------------------------------------------------------ *)
(* Plan generator                                                       *)
(* ------------------------------------------------------------------ *)

let collect_offers q =
  List.concat_map
    (fun (n : Qt_catalog.Node.t) ->
      (Seller.respond (Seller.default_config params) schema n ~requests:[ (q, 0.) ])
        .Seller.offers)
    federation.Qt_catalog.Federation.nodes

let test_plan_generator_covers_query () =
  let offers = collect_offers revenue in
  let candidates =
    Plan_generator.generate ~params ~weights:Offer.default_weights
      ~mode:Plan_generator.Mode_dp ~schema ~offers revenue
  in
  Alcotest.(check bool) "has candidates" true (candidates <> []);
  let best = List.hd candidates in
  Alcotest.(check bool) "cost finite" true (Cost.is_finite best.Plan_generator.cost);
  (* Candidates are sorted cheapest-first. *)
  let costs = List.map (fun c -> Cost.response c.Plan_generator.cost) candidates in
  Alcotest.(check (list (float 1e-9))) "sorted" (List.sort compare costs) costs

let test_plan_generator_empty_offers () =
  Alcotest.(check int) "no candidates from nothing" 0
    (List.length
       (Plan_generator.generate ~params ~weights:Offer.default_weights
          ~mode:Plan_generator.Mode_dp ~schema ~offers:[] revenue))

let test_plan_generator_union_is_disjoint () =
  let offers = collect_offers revenue in
  let candidates =
    Plan_generator.generate ~params ~weights:Offer.default_weights
      ~mode:Plan_generator.Mode_dp ~schema ~offers revenue
  in
  let rec check_unions plan =
    match plan with
    | Plan.Union { inputs; _ } ->
      let ranges =
        List.filter_map
          (fun input ->
            match input with
            | Plan.Remote r ->
              Some (Analysis.range_of r.Plan.query { Ast.rel = "c"; name = "custid" })
            | _ -> None)
          inputs
      in
      if not (Qt_util.Interval.disjoint_list ranges) then
        Alcotest.fail "union pieces overlap on c.custid";
      List.iter check_unions inputs
    | Plan.Filter { input; _ }
    | Plan.Project { input; _ }
    | Plan.Sort { input; _ }
    | Plan.Aggregate { input; _ }
    | Plan.Distinct { input; _ } ->
      check_unions input
    | Plan.Join { build; probe; _ } ->
      check_unions build;
      check_unions probe
    | Plan.Scan _ | Plan.Remote _ -> ()
  in
  List.iter (fun c -> check_unions c.Plan_generator.plan) candidates

let test_rollup_items () =
  Alcotest.(check bool) "sum rolls" true (Plan_generator.rollup_items revenue <> None);
  let avg = parse "SELECT AVG(il.charge) FROM invoiceline il" in
  Alcotest.(check bool) "avg does not" true (Plan_generator.rollup_items avg = None);
  let plain = parse "SELECT il.charge FROM invoiceline il" in
  Alcotest.(check bool) "plain does not" true (Plan_generator.rollup_items plain = None)

let test_singleton_blocks () =
  let offers = collect_offers revenue in
  let blocks =
    Plan_generator.singleton_blocks ~params ~weights:Offer.default_weights ~schema
      ~offers revenue
  in
  Alcotest.(check (list string)) "both aliases covered" [ "c"; "il" ]
    (List.sort compare (List.map fst blocks))

(* ------------------------------------------------------------------ *)
(* Buyer analyser                                                       *)
(* ------------------------------------------------------------------ *)

let test_analyser_proposes_agg_pieces () =
  let offers = collect_offers revenue in
  let proposals = Buyer_analyser.enrich ~schema ~query:revenue ~offers in
  Alcotest.(check bool) "proposes queries" true (proposals <> []);
  (* At least one proposal is an aggregate piece restricted to a partition
     range. *)
  let is_agg_piece q =
    Analysis.has_aggregate q
    && not
         (Qt_util.Interval.equal
            (Analysis.range_of q { Ast.rel = "c"; name = "custid" })
            Qt_util.Interval.full)
  in
  Alcotest.(check bool) "aggregate piece present" true (List.exists is_agg_piece proposals);
  (* Proposals are deduplicated semantically. *)
  let sigs = List.map Analysis.signature proposals in
  Alcotest.(check int) "no duplicates" (List.length sigs)
    (List.length (List.sort_uniq compare sigs))

let test_analyser_no_pieces_for_avg () =
  let avg =
    parse
      "SELECT AVG(il.charge) FROM customer c, invoiceline il WHERE c.custid = il.custid"
  in
  let offers = collect_offers avg in
  let proposals = Buyer_analyser.enrich ~schema ~query:avg ~offers in
  List.iter
    (fun q ->
      if Analysis.has_aggregate q then Alcotest.fail "AVG piece proposed")
    proposals

(* ------------------------------------------------------------------ *)
(* Trader end-to-end: correctness matrix                                *)
(* ------------------------------------------------------------------ *)

let test_qt_correct_matrix () =
  (* Execution correctness across placement shapes and query kinds — the
     central integration test. *)
  let queries =
    [
      Helpers.revenue_query ();
      Helpers.revenue_query ~range:(0, 399) ();
      parse "SELECT c.custname, il.charge FROM customer c, invoiceline il \
             WHERE c.custid = il.custid AND c.custid BETWEEN 100 AND 299";
      parse "SELECT COUNT(*) FROM customer c WHERE c.custid BETWEEN 0 AND 599";
      parse "SELECT il.custid, SUM(il.charge) FROM invoiceline il \
             GROUP BY il.custid ORDER BY il.custid";
      parse "SELECT DISTINCT c.office FROM customer c";
      parse "SELECT MIN(il.charge), MAX(il.charge) FROM invoiceline il";
    ]
  in
  let placements = [ (4, 2, 1); (4, 2, 2); (6, 3, 1) ] in
  List.iter
    (fun (nodes, partitions, replicas) ->
      let fed = Helpers.telecom_federation ~nodes ~partitions ~replicas () in
      List.iter (fun q -> ignore (Helpers.assert_qt_correct fed q)) queries)
    placements

let test_qt_correct_chain () =
  let fed = Helpers.chain_federation ~nodes:6 ~relations:3 ~partitions:3 () in
  List.iter
    (fun q -> ignore (Helpers.assert_qt_correct fed q))
    (Qt_sim.Workload.random_chain_queries ~seed:42 ~count:6 ~relations:3 ~max_joins:2)

let test_qt_correct_with_views () =
  let fed = Helpers.telecom_federation ~nodes:4 ~partitions:2 ~with_views:true () in
  let q =
    parse "SELECT il.custid, SUM(il.charge) FROM invoiceline il GROUP BY il.custid"
  in
  let outcome = Helpers.assert_qt_correct fed q in
  ignore outcome

let test_qt_deterministic () =
  let fed = Helpers.telecom_federation () in
  let config = Trader.default_config params in
  match
    (Trader.optimize config fed revenue, Trader.optimize config fed revenue)
  with
  | Ok a, Ok b ->
    Alcotest.(check (float 1e-12)) "same cost" (Cost.response a.Trader.cost)
      (Cost.response b.Trader.cost);
    Alcotest.(check int) "same iterations" a.Trader.stats.iterations
      b.Trader.stats.iterations;
    Alcotest.(check int) "same messages" a.Trader.stats.messages b.Trader.stats.messages
  | _ -> Alcotest.fail "optimization failed"

let test_qt_stats_sane () =
  let fed = Helpers.telecom_federation ~nodes:6 ~partitions:3 () in
  match Trader.optimize (Trader.default_config params) fed revenue with
  | Error e -> Alcotest.fail e
  | Ok outcome ->
    let s = outcome.Trader.stats in
    Alcotest.(check bool) "iterations in bounds" true
      (s.iterations >= 1 && s.iterations <= 6);
    Alcotest.(check bool) "messages flowed" true (s.messages > 0);
    Alcotest.(check bool) "bytes flowed" true (s.bytes > 0);
    Alcotest.(check bool) "clock advanced" true (s.sim_time > 0.);
    Alcotest.(check bool) "offers received" true (s.offers_received > 0);
    Alcotest.(check bool) "cost positive" true (s.plan_cost > 0.);
    Alcotest.(check (float 1e-9)) "cooperative surplus zero" 0. s.seller_surplus;
    Alcotest.(check bool) "purchased non-empty" true (outcome.Trader.purchased <> []);
    Alcotest.(check int) "trace per iteration" s.iterations
      (List.length outcome.Trader.trace)

let test_qt_fails_on_uncoverable () =
  (* Remove every node holding invoiceline: the trade must abort. *)
  let fed = Helpers.telecom_federation ~nodes:4 ~partitions:2 () in
  let nodes =
    List.map
      (fun (n : Qt_catalog.Node.t) ->
        Qt_catalog.Node.make ~id:n.node_id ~name:n.name
          ~fragments:
            (List.filter
               (fun (f : Qt_catalog.Fragment.t) -> f.rel <> "invoiceline")
               n.fragments)
          ())
      fed.Qt_catalog.Federation.nodes
  in
  let crippled = Qt_catalog.Federation.create fed.schema nodes in
  match Trader.optimize (Trader.default_config params) crippled revenue with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "optimized an unanswerable query"

let test_qt_competitive_costs_more () =
  let fed = Helpers.telecom_federation ~nodes:4 ~partitions:2 () in
  let coop = Trader.default_config params in
  let comp =
    {
      coop with
      Trader.strategy_of = (fun _ -> Strategy.default_competitive);
      seller_template =
        { (Seller.default_config params) with Seller.strategy = Strategy.default_competitive };
    }
  in
  match (Trader.optimize coop fed revenue, Trader.optimize comp fed revenue) with
  | Ok a, Ok b ->
    Alcotest.(check bool) "markup reflected in plan cost" true
      (Cost.response b.Trader.cost > Cost.response a.Trader.cost);
    Alcotest.(check bool) "sellers extract surplus" true
      (b.Trader.stats.seller_surplus > 0.)
  | _ -> Alcotest.fail "optimization failed"

let test_qt_auction_cheaper_than_bidding_under_competition () =
  (* With replicas, an auction lets competing copies undercut each other. *)
  let fed = Helpers.telecom_federation ~nodes:8 ~partitions:2 ~replicas:3 () in
  let base = Trader.default_config params in
  let competitive cfg =
    {
      cfg with
      Trader.strategy_of = (fun _ -> Strategy.default_competitive);
      seller_template =
        { (Seller.default_config params) with Seller.strategy = Strategy.default_competitive };
    }
  in
  let bidding = competitive base in
  let auction =
    competitive { base with Trader.protocol = Protocol.Reverse_auction { max_rounds = 10 } }
  in
  match (Trader.optimize bidding fed revenue, Trader.optimize auction fed revenue) with
  | Ok b, Ok a ->
    Alcotest.(check bool) "auction no worse" true
      (Cost.response a.Trader.cost <= Cost.response b.Trader.cost +. 1e-9)
  | _ -> Alcotest.fail "optimization failed"

let test_qt_two_phase_wins_on_aggregates () =
  (* For a grouped aggregate over partitioned data, the final plan should
     ship pre-aggregated pieces, not raw rows. *)
  let fed = Helpers.telecom_federation ~nodes:6 ~partitions:3 () in
  match Trader.optimize (Trader.default_config params) fed revenue with
  | Error e -> Alcotest.fail e
  | Ok outcome ->
    let remote_aggregated =
      List.for_all
        (fun (r : Plan.remote) -> Analysis.has_aggregate r.Plan.query)
        (Plan.remote_leaves outcome.Trader.plan)
    in
    Alcotest.(check bool) "pieces pre-aggregated" true remote_aggregated

let test_monetary_pricing () =
  (* Commercial sellers charge per delivered megabyte; a buyer that values
     money buys the smallest answer (the pre-aggregated pieces), and the
     price shows up in the offers. *)
  let fed = Helpers.telecom_federation ~nodes:4 ~partitions:2 () in
  let priced =
    { (Seller.default_config params) with Seller.price_per_mb = 10. }
  in
  let node = Qt_catalog.Federation.node fed 0 in
  let r = Seller.respond priced schema node ~requests:[ (revenue, 0.) ] in
  List.iter
    (fun (o : Offer.t) ->
      let expected = 10. *. o.props.rows *. float_of_int o.props.row_bytes /. 1e6 in
      Alcotest.(check (float 1e-9)) "price proportional to bytes" expected
        o.props.price)
    r.Seller.offers;
  (* A money-minimizing buyer pays less money than a time-minimizing one. *)
  let run weights =
    let config =
      {
        (Trader.default_config params) with
        Trader.weights;
        seller_template = priced;
      }
    in
    match Trader.optimize config fed revenue with
    | Ok o ->
      Qt_util.Listx.sum_by (fun (x : Offer.t) -> x.props.price) o.Trader.purchased
    | Error e -> Alcotest.fail e
  in
  let money_paid_by_time_buyer = run Offer.default_weights in
  let money_paid_by_money_buyer =
    run { Offer.default_weights with Offer.w_time = 0.001; w_price = 1. }
  in
  Alcotest.(check bool) "money buyer pays no more" true
    (money_paid_by_money_buyer <= money_paid_by_time_buyer +. 1e-9)

let test_weights_steer_away_from_views () =
  (* Section 3.1: the buyer's valuation is multidimensional.  A buyer that
     penalizes staleness hard must avoid materialized-view offers
     (freshness 0.9) in favour of base-table offers (freshness 1.0). *)
  let fed = Helpers.telecom_federation ~nodes:4 ~partitions:2 ~with_views:true () in
  let q =
    parse "SELECT il.custid, SUM(il.charge) FROM invoiceline il GROUP BY il.custid"
  in
  let run weights =
    let config = { (Trader.default_config params) with Trader.weights } in
    match Trader.optimize config fed q with
    | Ok o -> o
    | Error e -> Alcotest.fail e
  in
  let time_only = run Offer.default_weights in
  let fresh_only =
    run { Offer.default_weights with Offer.w_staleness = 1000. }
  in
  let uses_views o =
    List.exists (fun (x : Offer.t) -> x.via_view <> None) o.Trader.purchased
  in
  Alcotest.(check bool) "time-valuing buyer uses views" true (uses_views time_only);
  Alcotest.(check bool) "freshness-valuing buyer avoids views" false
    (uses_views fresh_only)

let test_qt_random_correctness_property () =
  (* Randomized end-to-end: random chain workloads over random placements
     must always execute to exactly the oracle's answer. *)
  let rng = Qt_util.Rng.create 2024 in
  for _ = 1 to 8 do
    let partitions = Qt_util.Rng.int_in rng 1 4 in
    let replicas = Qt_util.Rng.int_in rng 1 2 in
    let nodes = Qt_util.Rng.int_in rng (max 2 partitions) 8 in
    let fed =
      Helpers.chain_federation ~nodes ~relations:3 ~partitions ~replicas ()
    in
    let seed = Qt_util.Rng.int rng 100000 in
    List.iter
      (fun q -> ignore (Helpers.assert_qt_correct ~seed:(seed mod 97) fed q))
      (Qt_sim.Workload.random_chain_queries ~seed ~count:2 ~relations:3 ~max_joins:2)
  done

let test_qt_correct_on_skewed_data () =
  (* Zipf-skewed keys: fragment sizes are uneven, histograms drive the
     estimates, and the executed plan must still be exact. *)
  let fed =
    Qt_sim.Generator.telecom ~skew:1.0 ~customers:800 ~invoice_lines:4000
      ~key_domain:800
      ~placement:{ Qt_sim.Generator.partitions = 4; replicas = 1 }
      ~nodes:4 ()
  in
  ignore (Helpers.assert_qt_correct fed (Helpers.revenue_query ()));
  ignore (Helpers.assert_qt_correct fed (Helpers.revenue_query ~range:(0, 99) ()))

(* A federation with a coverage gap that only subcontracting can close
   cheaply: node 0 holds all invoice lines but only half the customers;
   node 1 holds the other half of the customers and nothing else.
   [replicated] adds node 2 carrying a copy of node 1's slice, so a
   failure of the import source is survivable. *)
let gap_federation ?(replicated = false) () =
  let module Schema = Qt_catalog.Schema in
  let module Fragment = Qt_catalog.Fragment in
  let module Node = Qt_catalog.Node in
  let module Interval = Qt_util.Interval in
  let key = Interval.make 0 799 in
  let customer =
    Schema.mk_relation ~partition_key:(Some "custid") ~row_bytes:64 ~cardinality:800
      ~attrs:
        [
          Schema.mk_attr ~domain:(Schema.D_int key) ~distinct:800 "custid";
          Schema.mk_attr ~domain:(Schema.D_int (Interval.make 0 99)) ~distinct:100
            "office";
        ]
      "customer"
  in
  let invoiceline =
    Schema.mk_relation ~partition_key:(Some "custid") ~row_bytes:48 ~cardinality:4000
      ~attrs:
        [
          Schema.mk_attr ~domain:(Schema.D_int key) ~distinct:800 "custid";
          Schema.mk_attr ~domain:(Schema.D_int (Interval.make 1 1000)) ~distinct:1000
            "charge";
        ]
      "invoiceline"
  in
  let schema = Schema.create [ customer; invoiceline ] in
  let frag rel lo hi rows = Fragment.make ~rel ~range:(Interval.make lo hi) ~rows in
  let nodes =
    [
      (* A beefy regional server: local joins are much cheaper here than
         at the buyer, so completing its coverage by subcontracting beats
         shipping raw pieces for buyer-side processing. *)
      Node.make ~id:0 ~name:"full-il" ~cpu_factor:8. ~io_factor:8.
        ~fragments:[ frag "customer" 0 399 400; frag "invoiceline" 0 799 4000 ]
        ();
      Node.make ~id:1 ~name:"cust-only" ~fragments:[ frag "customer" 400 799 400 ] ();
    ]
    @
    if replicated then
      [
        Node.make ~id:2 ~name:"cust-replica"
          ~fragments:[ frag "customer" 400 799 400 ]
          ();
      ]
    else []
  in
  Qt_catalog.Federation.create schema nodes

let gap_query =
  parse
    "SELECT c.office, SUM(il.charge) FROM customer c, invoiceline il \
     WHERE c.custid = il.custid GROUP BY c.office"

let test_subcontracting_completes_offers () =
  let fed = gap_federation () in
  let with_sub =
    { (Trader.default_config params) with Trader.allow_subcontracting = true }
  in
  match
    ( Trader.optimize (Trader.default_config params) fed gap_query,
      Trader.optimize with_sub fed gap_query )
  with
  | Ok plain, Ok sub ->
    (* The subcontracted plan ships a pre-aggregated answer and must be
       strictly cheaper than joining raw pieces at the buyer. *)
    Alcotest.(check bool) "subcontracting is cheaper" true
      (Cost.response sub.Trader.cost < Cost.response plain.Trader.cost);
    let imported =
      List.filter (fun (o : Offer.t) -> o.imports <> []) sub.Trader.purchased
    in
    Alcotest.(check bool) "an imported offer was purchased" true (imported <> []);
    (* Imports point at the third node's slice. *)
    List.iter
      (fun (o : Offer.t) ->
        List.iter
          (fun (rel, source, _) ->
            Alcotest.(check string) "imports customer slice" "customer" rel;
            Alcotest.(check bool) "from the other node" true (source <> o.seller))
          o.imports)
      imported
  | Error e, _ | _, Error e -> Alcotest.fail e

let test_subcontracted_plan_executes_correctly () =
  let fed = gap_federation () in
  let config =
    { (Trader.default_config params) with Trader.allow_subcontracting = true }
  in
  let outcome = Helpers.assert_qt_correct ~config fed gap_query in
  (* Sanity: the verified plan actually used an import. *)
  Alcotest.(check bool) "plan uses imports" true
    (List.exists
       (fun (r : Plan.remote) -> r.Plan.imports <> [])
       (Plan.remote_leaves outcome.Trader.plan))

let test_subcontracting_disabled_means_no_imports () =
  let fed = gap_federation () in
  match Trader.optimize (Trader.default_config params) fed gap_query with
  | Error e -> Alcotest.fail e
  | Ok o ->
    List.iter
      (fun (x : Offer.t) ->
        Alcotest.(check bool) "no imports when disabled" true (x.imports = []))
      o.Trader.purchased

let test_qt_ordered_query_delivers_sorted () =
  (* ORDER BY queries: the executed plan must deliver rows in order even
     when the optimizer absorbed the Sort into a merge join or a sorted
     remote delivery. *)
  let fed = Helpers.telecom_federation ~nodes:4 ~partitions:2 () in
  let q =
    parse
      "SELECT c.custid, c.custname FROM customer c \
       WHERE c.custid BETWEEN 0 AND 399 ORDER BY c.custid"
  in
  let outcome = Helpers.assert_qt_correct fed q in
  let store = Qt_exec.Store.generate ~seed:11 fed in
  let result = Qt_exec.Engine.run store fed outcome.Trader.plan in
  let idx =
    Qt_exec.Table.find_col_exn result ~alias:"c" ~name:"custid"
  in
  let keys = List.map (fun r -> r.(idx)) result.Qt_exec.Table.rows in
  let sorted = List.sort Qt_exec.Value.compare keys in
  Alcotest.(check bool) "delivered in order" true
    (List.for_all2 (fun a b -> Qt_exec.Value.compare a b = 0) keys sorted)

(* ------------------------------------------------------------------ *)
(* Failure injection & adaptive re-optimization (contracting)           *)
(* ------------------------------------------------------------------ *)

let test_failover_replans_and_executes () =
  (* 2 replicas: killing one seller of the original plan must be
     survivable, and the patched plan must avoid the dead node and still
     compute the exact answer. *)
  let fed = Helpers.telecom_federation ~nodes:6 ~partitions:3 ~replicas:2 () in
  let config = Trader.default_config params in
  match Trader.optimize config fed revenue with
  | Error e -> Alcotest.fail e
  | Ok previous ->
    let victim = (List.hd previous.Trader.purchased).Offer.seller in
    (match
       Qt_core.Recovery.failover ~params ~failed:[ victim ] ~previous fed revenue
     with
    | Error e -> Alcotest.fail e
    | Ok patched ->
      List.iter
        (fun (r : Plan.remote) ->
          if r.Plan.seller = victim then Alcotest.fail "plan still uses dead node")
        (Plan.remote_leaves patched.Trader.plan);
      (* Execute the patched plan against the reduced federation. *)
      let survivors =
        List.filter
          (fun (n : Qt_catalog.Node.t) -> n.node_id <> victim)
          fed.Qt_catalog.Federation.nodes
      in
      let reduced = Qt_catalog.Federation.create fed.schema survivors in
      let store = Qt_exec.Store.generate ~seed:17 reduced in
      let result = Qt_exec.Engine.run store reduced patched.Trader.plan in
      let oracle = Qt_exec.Naive.run_global store revenue in
      Alcotest.(check bool) "patched plan exact" true
        (Helpers.tables_equal_po result oracle))

let test_failover_contracts_cut_messages () =
  (* Re-trading with standing contracts must not talk more than a cold
     re-optimization of the reduced federation. *)
  let fed = Helpers.telecom_federation ~nodes:6 ~partitions:3 ~replicas:2 () in
  let config = Trader.default_config params in
  match Trader.optimize config fed revenue with
  | Error e -> Alcotest.fail e
  | Ok previous ->
    let victim = (List.hd previous.Trader.purchased).Offer.seller in
    let survivors =
      List.filter
        (fun (n : Qt_catalog.Node.t) -> n.node_id <> victim)
        fed.Qt_catalog.Federation.nodes
    in
    let reduced = Qt_catalog.Federation.create fed.schema survivors in
    (match
       ( Qt_core.Recovery.failover ~params ~failed:[ victim ] ~previous fed revenue,
         Trader.optimize config reduced revenue )
     with
    | Ok warm, Ok cold ->
      Alcotest.(check bool) "warm restart not chattier" true
        (warm.Trader.stats.messages <= cold.Trader.stats.messages);
      Alcotest.(check bool) "plan quality preserved" true
        (Cost.response warm.Trader.cost <= Cost.response cold.Trader.cost +. 1e-9)
    | Error e, _ | _, Error e -> Alcotest.fail e)

let test_failover_surviving_contract_filter () =
  let fed = Helpers.telecom_federation ~nodes:4 ~partitions:2 ~replicas:2 () in
  match Trader.optimize (Trader.default_config params) fed revenue with
  | Error e -> Alcotest.fail e
  | Ok previous ->
    let sellers =
      Qt_util.Listx.dedup ( = )
        (List.map (fun (o : Offer.t) -> o.seller) previous.Trader.purchased)
    in
    let victim = List.hd sellers in
    let kept = Qt_core.Recovery.surviving_contracts ~failed:[ victim ] previous in
    List.iter
      (fun (o : Offer.t) ->
        Alcotest.(check bool) "victim's contracts dropped" true (o.seller <> victim))
      kept;
    Alcotest.(check int) "nothing else dropped"
      (List.length
         (List.filter
            (fun (o : Offer.t) -> o.seller <> victim)
            previous.Trader.purchased))
      (List.length kept)

let test_failover_total_loss_aborts () =
  let fed = Helpers.telecom_federation ~nodes:4 ~partitions:2 ~replicas:1 () in
  match Trader.optimize (Trader.default_config params) fed revenue with
  | Error e -> Alcotest.fail e
  | Ok previous -> (
    (* Kill every node: nothing can cover the query. *)
    match
      Qt_core.Recovery.failover ~params
        ~failed:(Qt_catalog.Federation.node_ids fed)
        ~previous fed revenue
    with
    | Error _ -> ()
    | Ok _ -> Alcotest.fail "optimized with zero nodes")

let test_failover_multiple_simultaneous_failures () =
  (* Two purchased sellers die at once: with three replicas per partition
     the patched plan must avoid both and still compute the exact answer. *)
  let fed = Helpers.telecom_federation ~nodes:9 ~partitions:3 ~replicas:3 () in
  let config = Trader.default_config params in
  match Trader.optimize config fed revenue with
  | Error e -> Alcotest.fail e
  | Ok previous ->
    let sellers =
      Qt_util.Listx.dedup ( = )
        (List.map (fun (o : Offer.t) -> o.seller) previous.Trader.purchased)
    in
    if List.length sellers < 2 then
      Alcotest.fail "fixture bought from fewer than two sellers";
    let failed = [ List.nth sellers 0; List.nth sellers 1 ] in
    (match Qt_core.Recovery.failover ~params ~failed ~previous fed revenue with
    | Error e -> Alcotest.fail e
    | Ok patched ->
      List.iter
        (fun (r : Plan.remote) ->
          Alcotest.(check bool) "leaf avoids every dead node" true
            (not (List.mem r.Plan.seller failed)))
        (Plan.remote_leaves patched.Trader.plan);
      let survivors =
        List.filter
          (fun (n : Qt_catalog.Node.t) -> not (List.mem n.node_id failed))
          fed.Qt_catalog.Federation.nodes
      in
      let reduced = Qt_catalog.Federation.create fed.schema survivors in
      let store = Qt_exec.Store.generate ~seed:23 reduced in
      let result = Qt_exec.Engine.run store reduced patched.Trader.plan in
      let oracle = Qt_exec.Naive.run_global store revenue in
      Alcotest.(check bool) "patched plan exact after double failure" true
        (Helpers.tables_equal_po result oracle))

let test_failover_import_chain_invalidated () =
  (* A failure that kills the *source* of a subcontracted import: the
     importing seller is alive, but its contract can no longer be
     delivered and must be dropped and re-traded via the replica. *)
  let fed = gap_federation ~replicated:true () in
  let config =
    { (Trader.default_config params) with Trader.allow_subcontracting = true }
  in
  match Trader.optimize config fed gap_query with
  | Error e -> Alcotest.fail e
  | Ok previous ->
    let imported =
      List.filter (fun (o : Offer.t) -> o.imports <> []) previous.Trader.purchased
    in
    Alcotest.(check bool) "fixture plan subcontracts" true (imported <> []);
    let source =
      match (List.hd imported).Offer.imports with
      | (_, s, _) :: _ -> s
      | [] -> assert false
    in
    let kept = Qt_core.Recovery.surviving_contracts ~failed:[ source ] previous in
    List.iter
      (fun (o : Offer.t) ->
        Alcotest.(check bool) "no kept contract depends on the dead source" true
          (o.seller <> source
          && List.for_all (fun (_, s, _) -> s <> source) o.imports))
      kept;
    Alcotest.(check bool) "the importing contract was invalidated" true
      (List.length kept < List.length previous.Trader.purchased);
    (match
       Qt_core.Recovery.failover ~config ~params ~failed:[ source ] ~previous fed
         gap_query
     with
    | Error e -> Alcotest.fail e
    | Ok patched ->
      List.iter
        (fun (r : Plan.remote) ->
          Alcotest.(check bool) "leaf avoids the dead source" true
            (r.Plan.seller <> source);
          List.iter
            (fun (_, s, _) ->
              Alcotest.(check bool) "imports avoid the dead source" true (s <> source))
            r.Plan.imports)
        (Plan.remote_leaves patched.Trader.plan))

let suite =
  ( "core",
    [
      quick "seller offers partials" test_seller_offers_partials;
      quick "seller offer properties" test_seller_offer_properties_sane;
      quick "seller partial completeness" test_seller_partial_completeness;
      quick "seller competitive quotes" test_seller_competitive_quotes_higher;
      quick "seller max offers" test_seller_respects_max_offers;
      quick "seller silent when irrelevant" test_seller_silent_when_irrelevant;
      quick "seller scan-only capability" test_seller_scan_only_capability;
      quick "QT scan-only federation" test_qt_correct_with_scan_only_federation;
      quick "QT mixed capabilities" test_qt_mixed_capabilities_prefers_capable;
      quick "plan generator covers" test_plan_generator_covers_query;
      quick "plan generator empty" test_plan_generator_empty_offers;
      quick "plan generator unions disjoint" test_plan_generator_union_is_disjoint;
      quick "rollup items" test_rollup_items;
      quick "singleton blocks" test_singleton_blocks;
      quick "analyser proposes pieces" test_analyser_proposes_agg_pieces;
      quick "analyser avoids AVG" test_analyser_no_pieces_for_avg;
      quick "QT correctness matrix" test_qt_correct_matrix;
      quick "QT correctness chain" test_qt_correct_chain;
      quick "QT correctness with views" test_qt_correct_with_views;
      quick "QT deterministic" test_qt_deterministic;
      quick "QT stats sane" test_qt_stats_sane;
      quick "QT aborts when uncoverable" test_qt_fails_on_uncoverable;
      quick "QT competitive costs more" test_qt_competitive_costs_more;
      quick "QT auction vs bidding" test_qt_auction_cheaper_than_bidding_under_competition;
      quick "QT two-phase aggregates" test_qt_two_phase_wins_on_aggregates;
      quick "monetary pricing" test_monetary_pricing;
      quick "QT weights steer from views" test_weights_steer_away_from_views;
      quick "QT random correctness property" test_qt_random_correctness_property;
      quick "QT skewed data" test_qt_correct_on_skewed_data;
      quick "QT ordered delivery" test_qt_ordered_query_delivers_sorted;
      quick "subcontracting completes offers" test_subcontracting_completes_offers;
      quick "subcontracted plan executes" test_subcontracted_plan_executes_correctly;
      quick "subcontracting off means no imports" test_subcontracting_disabled_means_no_imports;
      quick "failover replans and executes" test_failover_replans_and_executes;
      quick "failover contracts cut messages" test_failover_contracts_cut_messages;
      quick "failover contract filter" test_failover_surviving_contract_filter;
      quick "failover total loss aborts" test_failover_total_loss_aborts;
      quick "failover multiple simultaneous failures"
        test_failover_multiple_simultaneous_failures;
      quick "failover import chain invalidated"
        test_failover_import_chain_invalidated;
    ] )
