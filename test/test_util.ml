module Rng = Qt_util.Rng
module Interval = Qt_util.Interval
module Listx = Qt_util.Listx

let quick = Helpers.quick

(* ------------------------------------------------------------------ *)
(* Rng                                                                  *)
(* ------------------------------------------------------------------ *)

let test_rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int) "same stream" (Rng.int a 1000) (Rng.int b 1000)
  done

let test_rng_bounds () =
  let rng = Rng.create 7 in
  for _ = 1 to 1000 do
    let v = Rng.int rng 10 in
    if v < 0 || v >= 10 then Alcotest.failf "out of bounds: %d" v
  done;
  for _ = 1 to 1000 do
    let v = Rng.int_in rng (-5) 5 in
    if v < -5 || v > 5 then Alcotest.failf "int_in out of bounds: %d" v
  done;
  for _ = 1 to 1000 do
    let v = Rng.float rng 2.5 in
    if v < 0. || v >= 2.5 then Alcotest.failf "float out of bounds: %f" v
  done

let test_rng_split_independent () =
  let parent = Rng.create 1 in
  let child = Rng.split parent in
  (* Drawing from the child must not change the parent's future draws
     relative to a parent that splits but discards the child. *)
  let parent' = Rng.create 1 in
  let _ = Rng.split parent' in
  let _ = Rng.int child 100 in
  Alcotest.(check int) "parent unaffected" (Rng.int parent' 1000) (Rng.int parent 1000)

let test_rng_pick_weighted () =
  let rng = Rng.create 3 in
  (* A zero-weight option must never be picked. *)
  for _ = 1 to 200 do
    let v = Rng.pick_weighted rng [ ("never", 0.); ("always", 1.) ] in
    Alcotest.(check string) "zero weight skipped" "always" v
  done

let test_rng_zipf_skew () =
  let rng = Rng.create 5 in
  let n = 50 in
  let counts = Array.make (n + 1) 0 in
  for _ = 1 to 5000 do
    let v = Rng.zipf rng ~n ~theta:1.0 in
    if v < 1 || v > n then Alcotest.failf "zipf out of range: %d" v;
    counts.(v) <- counts.(v) + 1
  done;
  if not (counts.(1) > counts.(n) * 3) then
    Alcotest.failf "zipf not skewed: head=%d tail=%d" counts.(1) counts.(n)

let test_rng_shuffle_permutation () =
  let rng = Rng.create 9 in
  let xs = Listx.range 1 50 in
  let shuffled = Rng.shuffle rng xs in
  Alcotest.(check (list int)) "same multiset" xs (List.sort compare shuffled)

(* ------------------------------------------------------------------ *)
(* Interval                                                             *)
(* ------------------------------------------------------------------ *)

let itv = Alcotest.testable Interval.pp Interval.equal

let test_interval_basics () =
  let a = Interval.make 0 9 and b = Interval.make 5 14 in
  Alcotest.(check itv) "inter" (Interval.make 5 9) (Interval.inter a b);
  Alcotest.(check bool) "overlaps" true (Interval.overlaps a b);
  Alcotest.(check bool) "contains" true (Interval.contains a (Interval.make 2 5));
  Alcotest.(check bool) "not contains" false (Interval.contains a b);
  Alcotest.(check itv) "hull" (Interval.make 0 14) (Interval.hull a b);
  Alcotest.(check int) "width" 10 (Interval.width a);
  Alcotest.(check bool) "empty inter" true
    (Interval.is_empty (Interval.inter a (Interval.make 20 30)))

let test_interval_subtract () =
  let a = Interval.make 0 9 in
  Alcotest.(check (list itv)) "middle hole"
    [ Interval.make 0 2; Interval.make 7 9 ]
    (Interval.subtract a (Interval.make 3 6));
  Alcotest.(check (list itv)) "left clip" [ Interval.make 5 9 ]
    (Interval.subtract a (Interval.make 0 4));
  Alcotest.(check (list itv)) "disjoint" [ a ]
    (Interval.subtract a (Interval.make 20 30));
  Alcotest.(check (list itv)) "swallowed" []
    (Interval.subtract a (Interval.make 0 9))

let test_interval_split_even () =
  let a = Interval.make 0 9 in
  let pieces = Interval.split_even a 3 in
  Alcotest.(check int) "three pieces" 3 (List.length pieces);
  Alcotest.(check bool) "disjoint" true (Interval.disjoint_list pieces);
  Alcotest.(check bool) "covers" true (Interval.union_covers pieces a);
  Alcotest.(check int) "total width" 10
    (List.fold_left (fun acc p -> acc + Interval.width p) 0 pieces)

let test_union_covers () =
  let whole = Interval.make 0 99 in
  Alcotest.(check bool) "full tiles" true
    (Interval.union_covers [ Interval.make 0 49; Interval.make 50 99 ] whole);
  Alcotest.(check bool) "gap detected" false
    (Interval.union_covers [ Interval.make 0 49; Interval.make 51 99 ] whole);
  Alcotest.(check bool) "overlap ok" true
    (Interval.union_covers [ Interval.make 0 60; Interval.make 40 99 ] whole)

(* Property tests *)

let interval_gen =
  QCheck2.Gen.(
    let* lo = int_range (-100) 100 in
    let* hi = int_range lo (lo + 150) in
    return (Interval.make lo hi))

let prop_subtract_disjoint_from_subtrahend =
  QCheck2.Test.make ~name:"subtract pieces avoid subtrahend" ~count:500
    QCheck2.Gen.(pair interval_gen interval_gen)
    (fun (a, b) ->
      List.for_all (fun piece -> not (Interval.overlaps piece b)) (Interval.subtract a b))

let prop_subtract_plus_inter_covers =
  QCheck2.Test.make ~name:"subtract + inter covers original" ~count:500
    QCheck2.Gen.(pair interval_gen interval_gen)
    (fun (a, b) ->
      let pieces = Interval.inter a b :: Interval.subtract a b in
      Interval.union_covers pieces a)

let prop_split_even_partitions =
  QCheck2.Test.make ~name:"split_even partitions" ~count:200
    QCheck2.Gen.(
      let* itv = interval_gen in
      let* n = int_range 1 (min 10 (Interval.width itv)) in
      return (itv, n))
    (fun (itv, n) ->
      let pieces = Interval.split_even itv n in
      List.length pieces = n
      && Interval.disjoint_list pieces
      && Interval.union_covers pieces itv)

(* ------------------------------------------------------------------ *)
(* Histogram                                                            *)
(* ------------------------------------------------------------------ *)

module Histogram = Qt_util.Histogram

let test_histogram_uniform () =
  let h = Histogram.uniform ~lo:0 ~hi:999 ~buckets:10 ~total:1000. in
  Alcotest.(check (float 1e-6)) "total" 1000. (Histogram.total h);
  Alcotest.(check (float 1.)) "half mass" 500.
    (Histogram.mass_in h (Interval.make 0 499));
  Alcotest.(check (float 0.01)) "quarter fraction" 0.25
    (Histogram.fraction_in h (Interval.make 0 249));
  Alcotest.(check (float 1e-6)) "disjoint is empty" 0.
    (Histogram.mass_in h (Interval.make 5000 6000))

let test_histogram_of_values () =
  let h = Histogram.of_values ~lo:0 ~hi:99 ~buckets:10 [ 5; 7; 95; 200; -3 ] in
  Alcotest.(check (float 1e-6)) "clamped total" 5. (Histogram.total h);
  Alcotest.(check (float 1e-6)) "first bucket" 3.
    (Histogram.mass_in h (Interval.make 0 9));
  Alcotest.(check (float 1e-6)) "last bucket" 2.
    (Histogram.mass_in h (Interval.make 90 99))

let test_histogram_zipf_skew () =
  let h = Histogram.zipf ~lo:0 ~hi:999 ~buckets:20 ~total:1000. ~theta:1.0 in
  let head = Histogram.mass_in h (Interval.make 0 99) in
  let tail = Histogram.mass_in h (Interval.make 900 999) in
  Alcotest.(check bool) "head much heavier" true (head > 5. *. tail);
  Alcotest.(check (float 5.)) "mass conserved" 1000. (Histogram.total h)

let test_histogram_sample () =
  let h = Histogram.zipf ~lo:0 ~hi:999 ~buckets:20 ~total:1000. ~theta:1.0 in
  let rng = Rng.create 3 in
  let head = ref 0 and tail = ref 0 in
  for _ = 1 to 2000 do
    let v = Histogram.sample h rng in
    if v < 0 || v > 999 then Alcotest.failf "sample out of domain: %d" v;
    if v < 100 then incr head;
    if v >= 900 then incr tail
  done;
  Alcotest.(check bool) "samples follow skew" true (!head > 3 * max 1 !tail)

let prop_histogram_mass_additive =
  QCheck2.Test.make ~name:"histogram mass is additive over a split" ~count:200
    QCheck2.Gen.(int_range 0 998)
    (fun split ->
      let h = Histogram.zipf ~lo:0 ~hi:999 ~buckets:16 ~total:500. ~theta:0.8 in
      let left = Histogram.mass_in h (Interval.make 0 split) in
      let right = Histogram.mass_in h (Interval.make (split + 1) 999) in
      Float.abs (left +. right -. Histogram.total h) < 1e-6)

(* ------------------------------------------------------------------ *)
(* Listx                                                                *)
(* ------------------------------------------------------------------ *)

let test_listx_basics () =
  Alcotest.(check (list int)) "take" [ 1; 2 ] (Listx.take 2 [ 1; 2; 3 ]);
  Alcotest.(check (list int)) "take beyond" [ 1 ] (Listx.take 5 [ 1 ]);
  Alcotest.(check (list int)) "drop" [ 3 ] (Listx.drop 2 [ 1; 2; 3 ]);
  Alcotest.(check (option int)) "index_of" (Some 1)
    (Listx.index_of (fun x -> x = 5) [ 4; 5; 6 ]);
  Alcotest.(check (list int)) "dedup" [ 1; 2; 3 ] (Listx.dedup ( = ) [ 1; 2; 1; 3; 2 ]);
  Alcotest.(check (option int)) "min_by" (Some 3)
    (Listx.min_by float_of_int [ 5; 3; 4 ]);
  Alcotest.(check int) "pairs count" 6 (List.length (Listx.pairs [ 1; 2; 3; 4 ]));
  Alcotest.(check int) "subsets 2 of 4" 6
    (List.length (Listx.subsets_of_size 2 [ 1; 2; 3; 4 ]));
  Alcotest.(check int) "nonempty subsets" 7
    (List.length (Listx.nonempty_subsets [ 1; 2; 3 ]));
  Alcotest.(check (list (list int))) "cartesian"
    [ [ 1; 3 ]; [ 1; 4 ]; [ 2; 3 ]; [ 2; 4 ] ]
    (Listx.cartesian [ [ 1; 2 ]; [ 3; 4 ] ]);
  Alcotest.(check (list int)) "range" [ 2; 3; 4 ] (Listx.range 2 4);
  Alcotest.(check (list int)) "empty range" [] (Listx.range 4 2)

let test_listx_group_by () =
  let groups = Listx.group_by (fun x -> x mod 2) [ 1; 2; 3; 4; 5 ] in
  Alcotest.(check int) "two groups" 2 (List.length groups);
  Alcotest.(check (list int)) "odd group" [ 1; 3; 5 ] (List.assoc 1 groups);
  Alcotest.(check (list int)) "even group" [ 2; 4 ] (List.assoc 0 groups)

(* ------------------------------------------------------------------ *)
(* Texttable                                                            *)
(* ------------------------------------------------------------------ *)

let test_texttable () =
  let t = Qt_util.Texttable.create [ "a"; "bb" ] in
  Qt_util.Texttable.add_row t [ "1" ];
  Qt_util.Texttable.add_float_row t ~decimals:1 "x" [ 2.25 ];
  let s = Qt_util.Texttable.to_string t in
  Alcotest.(check bool) "header present" true (String.length s > 0);
  Alcotest.(check bool) "row padded" true
    (String.split_on_char '\n' s |> List.length >= 4)

let suite =
  ( "util",
    [
      quick "rng deterministic" test_rng_deterministic;
      quick "rng bounds" test_rng_bounds;
      quick "rng split independence" test_rng_split_independent;
      quick "rng weighted pick" test_rng_pick_weighted;
      quick "rng zipf skew" test_rng_zipf_skew;
      quick "rng shuffle permutation" test_rng_shuffle_permutation;
      quick "interval basics" test_interval_basics;
      quick "interval subtract" test_interval_subtract;
      quick "interval split_even" test_interval_split_even;
      quick "interval union_covers" test_union_covers;
      QCheck_alcotest.to_alcotest prop_subtract_disjoint_from_subtrahend;
      QCheck_alcotest.to_alcotest prop_subtract_plus_inter_covers;
      QCheck_alcotest.to_alcotest prop_split_even_partitions;
      quick "histogram uniform" test_histogram_uniform;
      quick "histogram of_values" test_histogram_of_values;
      quick "histogram zipf skew" test_histogram_zipf_skew;
      quick "histogram sample" test_histogram_sample;
      QCheck_alcotest.to_alcotest prop_histogram_mass_additive;
      quick "listx basics" test_listx_basics;
      quick "listx group_by" test_listx_group_by;
      quick "texttable" test_texttable;
    ] )
