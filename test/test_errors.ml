(* Error-path coverage: every documented @raise and refusal across the
   libraries, so misuse fails loudly instead of silently. *)

module Ast = Qt_sql.Ast
module Interval = Qt_util.Interval
module Rng = Qt_util.Rng
module Value = Qt_exec.Value
module Table = Qt_exec.Table
module Ops = Qt_exec.Ops
module Plan = Qt_optimizer.Plan

let quick = Helpers.quick
let params = Qt_cost.Params.default

let raises_invalid f =
  match f () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument"

let test_interval_errors () =
  raises_invalid (fun () -> Interval.make 5 4);
  raises_invalid (fun () -> Interval.split_even (Interval.make 0 9) 0);
  raises_invalid (fun () -> Interval.split_even (Interval.make 0 2) 5)

let test_rng_errors () =
  let rng = Rng.create 1 in
  raises_invalid (fun () -> Rng.int rng 0);
  raises_invalid (fun () -> Rng.int_in rng 5 4);
  raises_invalid (fun () -> Rng.pick rng []);
  raises_invalid (fun () -> Rng.pick_weighted rng [ ("a", 0.) ]);
  raises_invalid (fun () -> Rng.zipf rng ~n:0 ~theta:1.);
  raises_invalid (fun () -> Rng.zipf rng ~n:5 ~theta:(-1.))

let test_histogram_errors () =
  raises_invalid (fun () -> Qt_util.Histogram.create ~lo:5 ~hi:4 ~buckets:4);
  raises_invalid (fun () -> Qt_util.Histogram.create ~lo:0 ~hi:9 ~buckets:0);
  let empty = Qt_util.Histogram.create ~lo:0 ~hi:9 ~buckets:2 in
  raises_invalid (fun () -> Qt_util.Histogram.sample empty (Rng.create 1))

let test_value_errors () =
  raises_invalid (fun () -> Value.to_float (Value.V_string "x"));
  raises_invalid (fun () -> Value.add (Value.V_string "x") (Value.V_int 1))

let test_table_errors () =
  let a = Table.create [| { Table.alias = "a"; name = "x" } |] [] in
  let b = Table.create [| { Table.alias = "b"; name = "y" } |] [] in
  raises_invalid (fun () -> Table.append a b);
  raises_invalid (fun () -> Table.find_col_exn a ~alias:"a" ~name:"nope")

let test_ops_errors () =
  let t =
    Table.create
      [| { Table.alias = "a"; name = "x" } |]
      [ [| Value.V_int 1 |] ]
  in
  (* Plain column not in the grouping list. *)
  raises_invalid (fun () ->
      Ops.aggregate t ~group_by:[] [ Ast.col "a" "x" ]);
  (* SUM without argument is not part of the subset. *)
  raises_invalid (fun () ->
      Ops.aggregate t ~group_by:[] [ Ast.Sel_agg (Ast.Sum, None) ])

let test_engine_rename_mismatch () =
  let federation = Helpers.telecom_federation ~nodes:2 ~partitions:1 () in
  let store = Qt_exec.Store.generate ~seed:1 federation in
  let remote =
    Plan.Remote
      {
        Plan.seller = 0;
        query = Helpers.parse "SELECT c.custid, c.office FROM customer c";
        remote_rows = 10.;
        remote_row_bytes = 16;
        delivered_cost = Qt_cost.Cost.zero;
        rename = Some [ ("c", "only_one_column") ];
        imports = [];
      }
  in
  raises_invalid (fun () -> Qt_exec.Engine.run store federation remote)

let test_node_errors () =
  raises_invalid (fun () ->
      Qt_catalog.Node.make ~cpu_factor:0. ~id:1 ~name:"bad" ~fragments:[] ());
  raises_invalid (fun () ->
      Qt_catalog.Node.make
        ~capabilities:
          { Qt_catalog.Node.max_join_relations = 0; can_aggregate = true; can_sort = true }
        ~id:1 ~name:"bad" ~fragments:[] ())

let test_fragment_errors () =
  raises_invalid (fun () ->
      Qt_catalog.Fragment.make ~rel:"r" ~range:Interval.full ~rows:(-1))

let test_workload_errors () =
  raises_invalid (fun () ->
      Qt_sim.Workload.chain_query ~joins:5 ~relations:3 ());
  raises_invalid (fun () ->
      Qt_sim.Workload.star_query ~dimensions:2 ~group_dim:5 ())

let test_federation_node_lookup () =
  let fed = Helpers.telecom_federation ~nodes:2 () in
  match Qt_catalog.Federation.node fed 99 with
  | exception Not_found -> ()
  | _ -> Alcotest.fail "unknown node id accepted"

let suite =
  ( "errors",
    [
      quick "interval errors" test_interval_errors;
      quick "rng errors" test_rng_errors;
      quick "histogram errors" test_histogram_errors;
      quick "value errors" test_value_errors;
      quick "table errors" test_table_errors;
      quick "ops errors" test_ops_errors;
      quick "engine rename mismatch" test_engine_rename_mismatch;
      quick "node errors" test_node_errors;
      quick "fragment errors" test_fragment_errors;
      quick "workload errors" test_workload_errors;
      quick "federation lookup" test_federation_node_lookup;
    ] )
