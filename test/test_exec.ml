module Ast = Qt_sql.Ast
module Value = Qt_exec.Value
module Table = Qt_exec.Table
module Ops = Qt_exec.Ops
module Store = Qt_exec.Store
module Naive = Qt_exec.Naive
module Interval = Qt_util.Interval

let quick = Helpers.quick
let parse = Helpers.parse

(* ------------------------------------------------------------------ *)
(* Values                                                               *)
(* ------------------------------------------------------------------ *)

let test_value_compare () =
  Alcotest.(check bool) "int vs float" true (Value.compare (V_int 2) (V_float 2.0) = 0);
  Alcotest.(check bool) "int order" true (Value.compare (V_int 1) (V_int 2) < 0);
  Alcotest.(check bool) "null first" true (Value.compare V_null (V_int (-999)) < 0);
  Alcotest.(check bool) "string after numeric" true
    (Value.compare (V_string "a") (V_int 5) > 0);
  Alcotest.(check bool) "add ints" true (Value.equal (Value.add (V_int 2) (V_int 3)) (V_int 5));
  Alcotest.(check bool) "add null" true (Value.equal (Value.add V_null (V_int 3)) (V_int 3))

(* ------------------------------------------------------------------ *)
(* Tables and operators over hand-built data                            *)
(* ------------------------------------------------------------------ *)

let col alias name = { Table.alias; name }

let people =
  Table.create
    [| col "p" "id"; col "p" "dept"; col "p" "salary" |]
    [
      [| Value.V_int 1; Value.V_string "eng"; Value.V_int 100 |];
      [| Value.V_int 2; Value.V_string "eng"; Value.V_int 200 |];
      [| Value.V_int 3; Value.V_string "ops"; Value.V_int 150 |];
      [| Value.V_int 4; Value.V_string "ops"; Value.V_int 50 |];
    ]

let depts =
  Table.create
    [| col "d" "name"; col "d" "floor" |]
    [
      [| Value.V_string "eng"; Value.V_int 3 |];
      [| Value.V_string "ops"; Value.V_int 1 |];
      [| Value.V_string "hr"; Value.V_int 2 |];
    ]

let test_table_create_validates () =
  match Table.create [| col "a" "x" |] [ [| Value.V_int 1; Value.V_int 2 |] ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "row width mismatch accepted"

let test_filter () =
  let preds = [ Ast.Cmp (Ast.Gt, Ast.Col (Ast.attr "p" "salary"), Ast.Lit (Ast.L_int 100)) ] in
  let out = Ops.filter people preds in
  Alcotest.(check int) "two rows" 2 (Table.cardinality out)

let test_filter_between () =
  let preds = [ Ast.Between (Ast.attr "p" "id", 2, 3) ] in
  Alcotest.(check int) "range filter" 2 (Table.cardinality (Ops.filter people preds))

let test_hash_join () =
  let preds = [ Ast.eq_join (Ast.attr "p" "dept") (Ast.attr "d" "name") ] in
  let out = Ops.hash_join people depts preds in
  Alcotest.(check int) "all people matched" 4 (Table.cardinality out);
  Alcotest.(check int) "five columns" 5 (Array.length out.Table.cols);
  (* hr has no people: inner join drops it. *)
  let hr =
    List.filter
      (fun row -> Value.equal row.(3) (Value.V_string "hr"))
      out.Table.rows
  in
  Alcotest.(check int) "no hr rows" 0 (List.length hr)

let test_join_with_extra_pred () =
  let preds =
    [
      Ast.eq_join (Ast.attr "p" "dept") (Ast.attr "d" "name");
      Ast.Cmp (Ast.Ge, Ast.Col (Ast.attr "p" "salary"), Ast.Lit (Ast.L_int 150));
    ]
  in
  Alcotest.(check int) "post filter applied" 2
    (Table.cardinality (Ops.hash_join people depts preds))

let test_merge_join_matches_hash () =
  let preds = [ Ast.eq_join (Ast.attr "p" "dept") (Ast.attr "d" "name") ] in
  let h = Ops.hash_join people depts preds in
  let m = Ops.merge_join people depts preds in
  Alcotest.(check bool) "same multiset" true (Helpers.tables_equal_po h m);
  (* Merge output is ordered by the join key. *)
  let key_idx = Table.find_col_exn m ~alias:"p" ~name:"dept" in
  let keys = List.map (fun r -> r.(key_idx)) m.Table.rows in
  let sorted = List.sort Value.compare keys in
  Alcotest.(check bool) "key-ordered output" true
    (List.for_all2 (fun a b -> Value.compare a b = 0) keys sorted)

let test_merge_join_duplicate_runs () =
  (* Both sides carry duplicate keys: the merge must emit the full cross
     product of each equal-key run. *)
  let l =
    Table.create [| col "a" "k" |]
      [ [| Value.V_int 1 |]; [| Value.V_int 1 |]; [| Value.V_int 2 |] ]
  in
  let r =
    Table.create [| col "b" "k" |]
      [ [| Value.V_int 1 |]; [| Value.V_int 1 |]; [| Value.V_int 1 |] ]
  in
  let preds = [ Ast.eq_join (Ast.attr "a" "k") (Ast.attr "b" "k") ] in
  Alcotest.(check int) "2x3 run product" 6
    (Table.cardinality (Ops.merge_join l r preds));
  Alcotest.(check int) "hash agrees" 6 (Table.cardinality (Ops.hash_join l r preds))

let test_merge_join_requires_eq () =
  match Ops.merge_join people depts [] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "merge join without equality accepted"

let test_hash_join_null_and_type_semantics () =
  (* NULL join keys never match (SQL three-valued equality) and numeric
     keys are distinct from string keys — identically in every join
     algorithm. *)
  let l =
    Table.create [| col "a" "k" |]
      [ [| Value.V_null |]; [| Value.V_int 2 |]; [| Value.V_string "2" |] ]
  in
  let r =
    Table.create [| col "b" "k" |]
      [ [| Value.V_null |]; [| Value.V_float 2.0 |] ]
  in
  let preds = [ Ast.eq_join (Ast.attr "a" "k") (Ast.attr "b" "k") ] in
  let h = Ops.hash_join l r preds in
  (* Only V_int 2 = V_float 2.0 matches: not the NULLs, not the string. *)
  Alcotest.(check int) "single match" 1 (Table.cardinality h);
  let m = Ops.merge_join l r preds in
  Alcotest.(check bool) "merge agrees" true (Helpers.tables_equal_po h m);
  let n = Ops.nested_loop_join l r preds in
  Alcotest.(check bool) "nested loop agrees" true (Helpers.tables_equal_po h n)

let test_nested_loop_matches_hash () =
  let preds =
    [
      Ast.eq_join (Ast.attr "p" "dept") (Ast.attr "d" "name");
      Ast.Cmp (Ast.Ge, Ast.Col (Ast.attr "p" "salary"), Ast.Lit (Ast.L_int 100));
    ]
  in
  let h = Ops.hash_join people depts preds in
  let n = Ops.nested_loop_join people depts preds in
  Alcotest.(check bool) "same multiset" true (Helpers.tables_equal_po h n)

let test_cartesian_fallback () =
  let out = Ops.hash_join people depts [] in
  Alcotest.(check int) "cartesian" 12 (Table.cardinality out)

let test_project_and_star () =
  let out = Ops.project people [ Ast.col "p" "salary" ] in
  Alcotest.(check int) "one col" 1 (Array.length out.Table.cols);
  let star = Ops.project people [ Ast.Sel_col (Ast.attr "p" "*") ] in
  Alcotest.(check int) "star keeps all" 3 (Array.length star.Table.cols);
  match Ops.project people [ Ast.Sel_agg (Ast.Count, None) ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "aggregate in project accepted"

let test_aggregate_grouped () =
  let out =
    Ops.aggregate people
      ~group_by:[ Ast.attr "p" "dept" ]
      [
        Ast.col "p" "dept";
        Ast.Sel_agg (Ast.Sum, Some (Ast.attr "p" "salary"));
        Ast.Sel_agg (Ast.Count, None);
        Ast.Sel_agg (Ast.Min, Some (Ast.attr "p" "salary"));
        Ast.Sel_agg (Ast.Max, Some (Ast.attr "p" "salary"));
        Ast.Sel_agg (Ast.Avg, Some (Ast.attr "p" "salary"));
      ]
  in
  Alcotest.(check int) "two groups" 2 (Table.cardinality out);
  let eng =
    List.find (fun r -> Value.equal r.(0) (Value.V_string "eng")) out.Table.rows
  in
  Alcotest.(check bool) "sum" true (Value.equal eng.(1) (Value.V_int 300));
  Alcotest.(check bool) "count" true (Value.equal eng.(2) (Value.V_int 2));
  Alcotest.(check bool) "min" true (Value.equal eng.(3) (Value.V_int 100));
  Alcotest.(check bool) "max" true (Value.equal eng.(4) (Value.V_int 200));
  Alcotest.(check bool) "avg" true (Value.equal eng.(5) (Value.V_float 150.))

let test_aggregate_global_empty () =
  let empty = { people with Table.rows = [] } in
  let out =
    Ops.aggregate empty ~group_by:[]
      [ Ast.Sel_agg (Ast.Count, None); Ast.Sel_agg (Ast.Sum, Some (Ast.attr "p" "salary")) ]
  in
  Alcotest.(check int) "one row for empty input" 1 (Table.cardinality out);
  let row = List.hd out.Table.rows in
  Alcotest.(check bool) "count 0" true (Value.equal row.(0) (Value.V_int 0));
  Alcotest.(check bool) "sum null" true (Value.is_null row.(1))

let test_distinct_and_sort () =
  let dup =
    Table.create [| col "t" "x" |]
      [ [| Value.V_int 2 |]; [| Value.V_int 1 |]; [| Value.V_int 2 |] ]
  in
  Alcotest.(check int) "dedup" 2 (Table.cardinality (Ops.distinct dup));
  let sorted = Ops.sort dup [ (Ast.attr "t" "x", Ast.Desc) ] in
  match sorted.Table.rows with
  | [ [| Value.V_int 2 |]; [| Value.V_int 2 |]; [| Value.V_int 1 |] ] -> ()
  | _ -> Alcotest.fail "descending sort wrong"

let test_append_reorders () =
  let t1 = Table.create [| col "a" "x"; col "a" "y" |] [ [| Value.V_int 1; Value.V_int 2 |] ] in
  let t2 = Table.create [| col "a" "y"; col "a" "x" |] [ [| Value.V_int 4; Value.V_int 3 |] ] in
  let out = Table.append t1 t2 in
  Alcotest.(check int) "two rows" 2 (Table.cardinality out);
  match List.nth out.Table.rows 1 with
  | [| Value.V_int 3; Value.V_int 4 |] -> ()
  | _ -> Alcotest.fail "columns not reordered"

(* ------------------------------------------------------------------ *)
(* Store + Naive                                                        *)
(* ------------------------------------------------------------------ *)

let federation = Helpers.telecom_federation ~nodes:4 ~partitions:2 ~replicas:2 ()
let store = Store.generate ~seed:5 federation

let test_store_cardinalities () =
  Alcotest.(check int) "customers" 800
    (Table.cardinality (Store.global_table store "customer"));
  Alcotest.(check int) "invoice lines" 4000
    (Table.cardinality (Store.global_table store "invoiceline"))

let test_fragment_slices_global () =
  let whole = Store.global_table store "customer" in
  let lo = Store.fragment_table store ~rel:"customer" ~range:(Interval.make 0 399) in
  let hi = Store.fragment_table store ~rel:"customer" ~range:(Interval.make 400 799) in
  Alcotest.(check int) "partition split"
    (Table.cardinality whole)
    (Table.cardinality lo + Table.cardinality hi)

let test_naive_matches_handcount () =
  let q = parse "SELECT COUNT(*) FROM customer c WHERE c.custid BETWEEN 0 AND 399" in
  let result = Naive.run_global store q in
  let expected =
    Table.cardinality (Store.fragment_table store ~rel:"customer" ~range:(Interval.make 0 399))
  in
  match List.hd result.Table.rows with
  | [| Value.V_int n |] -> Alcotest.(check int) "count" expected n
  | _ -> Alcotest.fail "count shape"

let test_node_union_of_fragments_vs_global () =
  (* A query over one node's holdings must equal the global query
     restricted to that node's ranges. *)
  let node = List.hd federation.Qt_catalog.Federation.nodes in
  let frag =
    List.find
      (fun (f : Qt_catalog.Fragment.t) -> f.rel = "customer")
      node.Qt_catalog.Node.fragments
  in
  let q = parse "SELECT c.custid, c.office FROM customer c" in
  let local = Naive.run_at_node store federation ~node:node.node_id q in
  let expected =
    Naive.run_global store
      (parse
         (Printf.sprintf
            "SELECT c.custid, c.office FROM customer c WHERE c.custid BETWEEN %d AND %d"
            frag.range.Interval.lo frag.range.Interval.hi))
  in
  Alcotest.(check bool) "node = restricted global" true
    (Helpers.tables_equal_po local expected)

let test_replicas_agree () =
  (* Two nodes holding the same partition must give identical answers. *)
  let q = parse "SELECT c.custid FROM customer c WHERE c.custid BETWEEN 0 AND 399" in
  let holders =
    List.filter
      (fun (n : Qt_catalog.Node.t) ->
        List.exists
          (fun (f : Qt_catalog.Fragment.t) ->
            f.rel = "customer" && Interval.contains f.range (Interval.make 0 399))
          n.fragments)
      federation.Qt_catalog.Federation.nodes
  in
  match holders with
  | a :: b :: _ ->
    let ra = Naive.run_at_node store federation ~node:a.node_id q in
    let rb = Naive.run_at_node store federation ~node:b.node_id q in
    Alcotest.(check bool) "replicas identical" true (Helpers.tables_equal_po ra rb)
  | _ -> Alcotest.fail "expected two replicas of partition 0"

let test_naive_join_group () =
  let q =
    parse
      "SELECT c.office, SUM(il.charge) FROM customer c, invoiceline il \
       WHERE c.custid = il.custid GROUP BY c.office"
  in
  let result = Naive.run_global store q in
  Alcotest.(check bool) "some groups" true (Table.cardinality result > 0);
  Alcotest.(check bool) "at most 100 offices" true (Table.cardinality result <= 100);
  (* Sum of per-office sums = global sum. *)
  let total_by_office =
    Qt_util.Listx.sum_by (fun row -> Value.to_float row.(1)) result.Table.rows
  in
  let global =
    Naive.run_global store
      (parse
         "SELECT SUM(il.charge) FROM customer c, invoiceline il \
          WHERE c.custid = il.custid")
  in
  let expected = Value.to_float (List.hd global.Table.rows).(0) in
  (* Grouping must not lose or duplicate joined rows. *)
  Alcotest.(check (float 0.5)) "totals agree" expected total_by_office

let test_materialize_views () =
  let fed = Helpers.telecom_federation ~nodes:4 ~partitions:2 ~with_views:true () in
  let st = Store.generate ~seed:6 fed in
  Naive.materialize_views st fed;
  let node =
    List.find
      (fun (n : Qt_catalog.Node.t) -> n.Qt_catalog.Node.views <> [])
      fed.Qt_catalog.Federation.nodes
  in
  let view = List.hd node.Qt_catalog.Node.views in
  match Store.view_table st ~node:node.node_id ~view:view.view_name with
  | None -> Alcotest.fail "view not materialized"
  | Some t ->
    Alcotest.(check int) "three columns" 3 (Array.length t.Table.cols);
    Alcotest.(check bool) "non-empty" true (Table.cardinality t > 0);
    (* Column names follow the stable output-name convention. *)
    Alcotest.(check string) "sum column" "sum_il_charge" t.Table.cols.(1).Table.name

(* Property: for random chain queries, evaluating at a node that holds a
   full replica equals the global evaluation. *)
let prop_full_replica_node_is_global =
  let fed = Helpers.chain_federation ~nodes:2 ~relations:2 ~partitions:1 ~replicas:2 () in
  let st = Store.generate ~seed:8 fed in
  QCheck2.Test.make ~name:"full-replica node answers = global" ~count:30
    QCheck2.Gen.(int_range 0 1000)
    (fun seed ->
      let q =
        List.hd
          (Qt_sim.Workload.random_chain_queries ~seed ~count:1 ~relations:2 ~max_joins:1)
      in
      let local = Naive.run_at_node st fed ~node:0 q in
      let global = Naive.run_global st q in
      Helpers.tables_equal_po local global)

let suite =
  ( "exec",
    [
      quick "value compare" test_value_compare;
      quick "table create validates" test_table_create_validates;
      quick "filter" test_filter;
      quick "filter between" test_filter_between;
      quick "hash join" test_hash_join;
      quick "join with extra pred" test_join_with_extra_pred;
      quick "merge join matches hash" test_merge_join_matches_hash;
      quick "merge join duplicate runs" test_merge_join_duplicate_runs;
      quick "merge join requires eq" test_merge_join_requires_eq;
      quick "join null/type semantics" test_hash_join_null_and_type_semantics;
      quick "nested loop matches hash" test_nested_loop_matches_hash;
      quick "cartesian fallback" test_cartesian_fallback;
      quick "project and star" test_project_and_star;
      quick "aggregate grouped" test_aggregate_grouped;
      quick "aggregate global empty" test_aggregate_global_empty;
      quick "distinct and sort" test_distinct_and_sort;
      quick "append reorders" test_append_reorders;
      quick "store cardinalities" test_store_cardinalities;
      quick "fragments slice global" test_fragment_slices_global;
      quick "naive matches hand count" test_naive_matches_handcount;
      quick "node union vs global" test_node_union_of_fragments_vs_global;
      quick "replicas agree" test_replicas_agree;
      quick "naive join group" test_naive_join_group;
      quick "materialize views" test_materialize_views;
      QCheck_alcotest.to_alcotest prop_full_replica_node_is_global;
    ] )
