(* Broader edge-case coverage across modules: pretty-printers, error
   paths, invariants of the offer machinery, and cost-model corners that
   the mainline suites do not exercise. *)

module Ast = Qt_sql.Ast
module Analysis = Qt_sql.Analysis
module Interval = Qt_util.Interval
module Cost = Qt_cost.Cost
module Model = Qt_cost.Model
module Plan = Qt_optimizer.Plan
module Offer = Qt_core.Offer
module Seller = Qt_core.Seller
module Trader = Qt_core.Trader
module Localize = Qt_rewrite.Localize

let quick = Helpers.quick
let parse = Helpers.parse
let params = Qt_cost.Params.default

let federation = Helpers.telecom_federation ~nodes:4 ~partitions:2 ()
let schema = federation.Qt_catalog.Federation.schema
let revenue = Helpers.revenue_query ()

(* ------------------------------------------------------------------ *)
(* Pretty-printers (smoke: non-empty, mention the right things)          *)
(* ------------------------------------------------------------------ *)

let test_pp_smoke () =
  let s = Format.asprintf "%a" Qt_catalog.Federation.pp federation in
  Alcotest.(check bool) "federation pp mentions nodes" true
    (String.length s > 0
    && Astring_like.contains s "node0" && Astring_like.contains s "customer");
  match Trader.optimize (Trader.default_config params) federation revenue with
  | Error e -> Alcotest.fail e
  | Ok o ->
    let plan_s = Format.asprintf "%a" Plan.pp o.plan in
    Alcotest.(check bool) "plan pp mentions Remote" true
      (Astring_like.contains plan_s "Remote");
    let offer_s =
      Format.asprintf "%a" Offer.pp (List.hd o.purchased)
    in
    Alcotest.(check bool) "offer pp mentions node" true
      (Astring_like.contains offer_s "node")

(* ------------------------------------------------------------------ *)
(* Offer invariants (property over every offer any node makes)          *)
(* ------------------------------------------------------------------ *)

let test_offer_invariants () =
  let queries =
    [
      revenue;
      parse "SELECT c.custname FROM customer c WHERE c.custid BETWEEN 0 AND 99";
      parse "SELECT COUNT(*) FROM invoiceline il";
      parse
        "SELECT c.custname, il.charge FROM customer c, invoiceline il \
         WHERE c.custid = il.custid AND il.charge > 500";
    ]
  in
  List.iter
    (fun q ->
      List.iter
        (fun (n : Qt_catalog.Node.t) ->
          let r =
            Seller.respond (Seller.default_config params) schema n
              ~requests:[ (q, 0.) ]
          in
          List.iter
            (fun (o : Offer.t) ->
              (* Coverage never exceeds the requirement. *)
              List.iter
                (fun (alias, covered) ->
                  let required = Localize.required_range schema q alias in
                  if not (Interval.contains required covered) then
                    Alcotest.failf "coverage exceeds requirement for %s" alias)
                o.coverage;
              (* Subsets are sorted and within the query's aliases. *)
              Alcotest.(check bool) "subset sorted" true
                (o.subset = List.sort String.compare o.subset);
              List.iter
                (fun a ->
                  if not (List.mem a (Analysis.aliases q)) then
                    Alcotest.failf "alien alias %s" a)
                o.subset;
              (* The offered query only references retained aliases. *)
              List.iter
                (fun a ->
                  if o.via_view = None && not (List.mem a o.subset) then
                    Alcotest.failf "offered query mentions dropped alias %s" a)
                (Analysis.aliases o.answers))
            r.Seller.offers)
        federation.Qt_catalog.Federation.nodes)
    queries

(* ------------------------------------------------------------------ *)
(* Cost model corners                                                   *)
(* ------------------------------------------------------------------ *)

let test_sort_merge_presorted_cheaper () =
  let base ~left_sorted =
    Cost.response
      (Model.sort_merge_join params ~left_sorted ~left_rows:20000. ~right_rows:20000.
         ~out_rows:20000. ())
  in
  Alcotest.(check bool) "pre-sorted side is cheaper" true
    (base ~left_sorted:true < base ~left_sorted:false)

let test_external_sort_spills () =
  let small = Model.external_sort params ~row_bytes:100 ~rows:100. () in
  let big = Model.external_sort params ~row_bytes:100 ~rows:1_000_000. () in
  Alcotest.(check (float 1e-12)) "no io in memory" 0. small.Cost.io;
  Alcotest.(check bool) "spill pays io" true (big.Cost.io > 0.)

let test_cost_pp () =
  let s = Format.asprintf "%a" Cost.pp (Cost.make ~cpu:1. ~net:2. ()) in
  Alcotest.(check bool) "mentions seconds" true (Astring_like.contains s "s")

(* ------------------------------------------------------------------ *)
(* Localize caps and trader bounds                                      *)
(* ------------------------------------------------------------------ *)

let test_localize_max_variants () =
  let node =
    Qt_catalog.Node.make ~id:77 ~name:"many"
      ~fragments:
        (List.init 6 (fun i ->
             Qt_catalog.Fragment.make ~rel:"customer"
               ~range:(Interval.make (i * 100) ((i * 100) + 99))
               ~rows:100))
      ()
  in
  let q = parse "SELECT c.custname FROM customer c" in
  let all = Localize.localize schema node q in
  Alcotest.(check int) "six variants" 6 (List.length all);
  let capped = Localize.localize ~max_variants:2 schema node q in
  Alcotest.(check int) "capped" 2 (List.length capped)

let test_trader_single_iteration () =
  let config = { (Trader.default_config params) with Trader.max_iterations = 1 } in
  match Trader.optimize config federation revenue with
  | Error e -> Alcotest.fail e
  | Ok o -> Alcotest.(check int) "stopped at one" 1 o.Trader.stats.iterations

let test_trader_iteration_costs_monotone () =
  match Trader.optimize (Trader.default_config params) federation revenue with
  | Error e -> Alcotest.fail e
  | Ok o ->
    let rec non_increasing = function
      | a :: (b :: _ as rest) -> a >= b -. 1e-12 && non_increasing rest
      | [ _ ] | [] -> true
    in
    Alcotest.(check bool) "best-so-far never worsens" true
      (non_increasing o.Trader.iteration_costs)

(* ------------------------------------------------------------------ *)
(* Texttable error path                                                 *)
(* ------------------------------------------------------------------ *)

let test_texttable_too_wide () =
  let t = Qt_util.Texttable.create [ "a" ] in
  match Qt_util.Texttable.add_row t [ "1"; "2" ] with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "over-wide row accepted"

(* ------------------------------------------------------------------ *)
(* Engine scans materialized views directly                             *)
(* ------------------------------------------------------------------ *)

let test_engine_scans_view () =
  let fed = Helpers.telecom_federation ~nodes:4 ~partitions:2 ~with_views:true () in
  let store = Qt_exec.Store.generate ~seed:5 fed in
  Qt_exec.Naive.materialize_views store fed;
  let node =
    List.find
      (fun (n : Qt_catalog.Node.t) -> n.views <> [])
      fed.Qt_catalog.Federation.nodes
  in
  let view = List.hd node.views in
  let plan =
    Plan.Scan
      {
        Plan.alias = "v";
        rel = view.view_name;
        range = Interval.full;
        scan_rows = float_of_int view.rows;
        row_bytes = view.row_bytes;
        node = node.node_id;
      }
  in
  let result = Qt_exec.Engine.run store fed plan in
  Alcotest.(check bool) "view rows scanned" true
    (Qt_exec.Table.cardinality result > 0);
  Alcotest.(check string) "retagged alias" "v" result.Qt_exec.Table.cols.(0).alias

let suite =
  ( "extra",
    [
      quick "pp smoke" test_pp_smoke;
      quick "offer invariants" test_offer_invariants;
      quick "sort-merge presorted cheaper" test_sort_merge_presorted_cheaper;
      quick "external sort spills" test_external_sort_spills;
      quick "cost pp" test_cost_pp;
      quick "localize max variants" test_localize_max_variants;
      quick "trader single iteration" test_trader_single_iteration;
      quick "trader convergence monotone" test_trader_iteration_costs_monotone;
      quick "texttable too wide" test_texttable_too_wide;
      quick "engine scans view" test_engine_scans_view;
    ] )
