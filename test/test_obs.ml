(* Observability: span bookkeeping, metrics-registry JSON, phase-span
   parity against Trader.phase_stats, disabled-sink equivalence, and the
   Chrome trace exporter + validator round trip. *)

module Obs = Qt_obs.Obs
module Metrics = Qt_obs.Metrics
module Chrome = Qt_obs.Chrome_trace
module Market = Qt_market.Market
module Trader = Qt_core.Trader
open Helpers

let params = Qt_cost.Params.default

(* ------------------------------------------------------------------ *)
(* Span bookkeeping                                                     *)
(* ------------------------------------------------------------------ *)

let test_span_basics () =
  let t = Obs.create () in
  Alcotest.(check bool) "enabled" true (Obs.enabled t);
  let root = Obs.open_span t ~cat:"a" ~name:"root" ~track:0 ~t0:1. () in
  let child =
    Obs.emit t ~cat:"b" ~name:"child" ~track:0 ~parent:root
      ~attrs:[ ("n", Obs.Int 3) ]
      ~t0:1.5 ~t1:2. ()
  in
  Obs.close t root ~attrs:[ ("done", Obs.Int 1) ] ~t1:3. ();
  Alcotest.(check int) "two spans" 2 (Obs.span_count t);
  let spans = Obs.spans t in
  (* Emission order: open_span appends at open time. *)
  let r = List.hd spans and c = List.nth spans 1 in
  Alcotest.(check string) "root first" "root" r.Obs.name;
  Alcotest.(check int) "child id" child c.Obs.id;
  Alcotest.(check int) "child parent" root c.Obs.parent;
  Alcotest.(check (float 0.)) "root closed" 3. r.Obs.t1;
  Alcotest.(check int) "root attr appended" 1 (Obs.attr_int r.Obs.attrs "done");
  Alcotest.(check (list string)) "categories sorted" [ "a"; "b" ] (Obs.categories t)

let test_span_close_clamps () =
  let t = Obs.create () in
  let id = Obs.open_span t ~cat:"c" ~name:"x" ~track:2 ~t0:5. () in
  Obs.close t id ~t1:4. ();
  let s = List.hd (Obs.spans t) in
  Alcotest.(check (float 0.)) "t1 clamped to t0" 5. s.Obs.t1;
  (* Closing an unknown id must be a silent no-op. *)
  Obs.close t 999 ~t1:9. ()

let test_disabled_sink_noops () =
  let t = Obs.disabled in
  Alcotest.(check bool) "disabled" false (Obs.enabled t);
  let id = Obs.emit t ~cat:"x" ~name:"y" ~track:0 ~t0:0. ~t1:1. () in
  Alcotest.(check int) "emit returns 0" 0 id;
  ignore (Obs.open_span t ~cat:"x" ~name:"y" ~track:0 ~t0:0. ());
  Obs.close t 0 ~t1:1. ();
  Obs.track_name t 0 "nope";
  Alcotest.(check int) "no spans recorded" 0 (Obs.span_count t)

let test_track_names () =
  let t = Obs.create () in
  Obs.track_name t (-1) "buyer";
  Obs.track_name t (-1) "ignored (first wins)";
  ignore (Obs.instant t ~cat:"c" ~name:"i" ~track:3 ~at:0. ());
  let tracks = Obs.tracks t in
  Alcotest.(check (list (pair int string)))
    "ascending, registered + generated names"
    [ (-1, "buyer"); (3, "track 3") ]
    tracks

(* ------------------------------------------------------------------ *)
(* Metrics registry                                                     *)
(* ------------------------------------------------------------------ *)

let test_metrics_golden_json () =
  let m = Metrics.create () in
  let c = Metrics.counter m "b.count" in
  Metrics.incr c;
  Metrics.incr ~by:4 c;
  Metrics.set (Metrics.gauge m "a.gauge") 2.5;
  let h = Metrics.histogram m "c.lat" in
  Metrics.observe h 0.001;
  Metrics.observe h 0.003;
  Metrics.observe h 0.003;
  Alcotest.(check string)
    "flat sorted rendering"
    "{\"a.gauge\":2.5,\"b.count\":5,\"c.lat.count\":3,\"c.lat.mean\":0.00233333,\
     \"c.lat.p50\":0.00324975,\"c.lat.p95\":0.00392407,\"c.lat.p99\":0.00398401}"
    (Metrics.to_json m)

let test_metrics_kind_clash () =
  let m = Metrics.create () in
  ignore (Metrics.counter m "x");
  Alcotest.check_raises "kind mismatch rejected"
    (Invalid_argument "Metrics.gauge: x registered as another kind")
    (fun () -> ignore (Metrics.gauge m "x"))

let test_metrics_empty_histogram () =
  let m = Metrics.create () in
  let h = Metrics.histogram m "e.lat" in
  Alcotest.(check int) "no observations" 0 (Metrics.observations h);
  Alcotest.(check (float 0.)) "empty percentile is 0" 0.
    (Metrics.percentile h 0.5);
  Alcotest.(check string)
    "empty histogram renders null, not a fake zero"
    "{\"e.lat.count\":0,\"e.lat.mean\":null,\"e.lat.p50\":null,\
     \"e.lat.p95\":null,\"e.lat.p99\":null}"
    (Metrics.to_json m)

let test_metrics_single_sample_bounds () =
  let m = Metrics.create () in
  let h = Metrics.histogram m "s.lat" in
  Metrics.observe h 0.0042;
  let p0 = Metrics.percentile h 0. and p1 = Metrics.percentile h 1. in
  (* Both extremes land in the lone sample's bucket (1 ms wide at the
     default scale), p0 at its lower edge and p1 at its upper. *)
  Alcotest.(check bool) "p0 <= p1" true (p0 <= p1);
  Alcotest.(check bool) "spread is at most one bucket" true (p1 -. p0 <= 0.001);
  Alcotest.(check bool) "bounds bracket the sample's bucket" true
    (p0 <= 0.0042 && 0.0042 <= p1 +. 1e-9);
  Alcotest.(check bool) "out-of-range p clamps" true
    (Metrics.percentile h (-3.) = p0 && Metrics.percentile h 7. = p1)

let test_histogram_percentile () =
  let h = Qt_util.Histogram.create ~lo:0 ~hi:99 ~buckets:100 in
  for v = 0 to 99 do
    Qt_util.Histogram.add h v
  done;
  let p q = Qt_util.Histogram.percentile h q in
  Alcotest.(check bool) "p50 near middle" true (Float.abs (p 0.5 -. 49.5) <= 1.);
  Alcotest.(check bool) "p99 near tail" true (p 0.99 >= 97.);
  Alcotest.(check (float 0.)) "p0 at lo" 0. (p 0.);
  Alcotest.(check bool) "p1 at hi" true (p 1. >= 98.);
  let empty = Qt_util.Histogram.create ~lo:10 ~hi:20 ~buckets:10 in
  Alcotest.(check (float 0.)) "empty falls back to lo" 10.
    (Qt_util.Histogram.percentile empty 0.5)

(* ------------------------------------------------------------------ *)
(* Phase-span parity with Trader.phase_stats                            *)
(* ------------------------------------------------------------------ *)

let exact = Alcotest.(check (float 0.))

let test_phase_parity () =
  let federation = telecom_federation ~nodes:4 ~partitions:2 ~replicas:2 () in
  let q = revenue_query ~range:(0, 399) () in
  let obs = Obs.create () in
  match
    Trader.optimize ~obs (Trader.default_config params) federation q
  with
  | Error e -> Alcotest.failf "optimize failed: %s" e
  | Ok o ->
    let check_phase cat (p : Trader.phase) =
      let s = Obs.phase_sum obs ~cat ~track:Trader.buyer_id () in
      Alcotest.(check int) (cat ^ " messages") p.Trader.messages s.Obs.ps_messages;
      Alcotest.(check int) (cat ^ " bytes") p.Trader.bytes s.Obs.ps_bytes;
      Alcotest.(check int) (cat ^ " hits") p.Trader.cache_hits s.Obs.ps_hits;
      Alcotest.(check int) (cat ^ " misses") p.Trader.cache_misses s.Obs.ps_misses;
      (* The spans carry the very diffs the accumulator summed, in the
         same order, so equality is float-exact — not approximate. *)
      exact (cat ^ " sim") p.Trader.sim s.Obs.ps_sim;
      exact (cat ^ " wall") p.Trader.wall s.Obs.ps_wall
    in
    check_phase "rfb" o.Trader.phases.rfb;
    check_phase "pricing" o.Trader.phases.pricing;
    check_phase "negotiation" o.Trader.phases.negotiation;
    check_phase "plan_gen" o.Trader.phases.plan_gen;
    (* Per-seller price spans exist on seller tracks with cache attrs. *)
    let price_spans =
      List.filter (fun (s : Obs.span) -> s.Obs.name = "price") (Obs.spans obs)
    in
    Alcotest.(check bool) "seller price spans present" true (price_spans <> []);
    List.iter
      (fun (s : Obs.span) ->
        Alcotest.(check bool) "price span on a seller track" true (s.Obs.track >= 0))
      price_spans

(* ------------------------------------------------------------------ *)
(* Disabled-sink equivalence and trace determinism                      *)
(* ------------------------------------------------------------------ *)

let market_config () =
  {
    (Market.default_config params) with
    Market.admission =
      { Qt_market.Admission.default_config with
        Qt_market.Admission.slots = 1;
        queue_limit = 1;
      };
  }

let market_queries n =
  List.init n (fun i ->
      let lo = i mod 2 * 200 in
      revenue_query ~range:(lo, lo + 199) ())

let market_federation () = telecom_federation ~nodes:8 ~partitions:4 ~replicas:2 ()

let test_noop_sink_equivalence () =
  let run obs =
    Market.run ~obs (market_config ()) (market_federation ()) (market_queries 4)
  in
  let off = run Obs.disabled in
  let on = run (Obs.create ()) in
  Alcotest.(check string) "tracing cannot change results"
    (Market.to_json off) (Market.to_json on);
  Alcotest.(check string) "nor the metrics rendering"
    (Market.metrics_json off) (Market.metrics_json on)

let test_trace_determinism () =
  let run () =
    let obs = Obs.create () in
    ignore
      (Market.run ~obs (market_config ()) (market_federation ())
         (market_queries 4));
    obs
  in
  let a = run () and b = run () in
  Alcotest.(check string) "same-seed traces byte-identical"
    (Chrome.to_json a) (Chrome.to_json b);
  let cats = Obs.categories a in
  List.iter
    (fun c ->
      Alcotest.(check bool) (c ^ " category present") true (List.mem c cats))
    [ "rfb"; "pricing"; "negotiation"; "admission" ];
  Alcotest.(check bool) "several node tracks" true
    (List.length (Obs.tracks a) >= 3)

(* ------------------------------------------------------------------ *)
(* Chrome trace exporter + validator                                    *)
(* ------------------------------------------------------------------ *)

let test_exported_trace_validates () =
  let obs = Obs.create () in
  ignore
    (Market.run ~obs (market_config ()) (market_federation ()) (market_queries 3));
  let json = Chrome.to_json obs in
  (match Chrome.validate json with
  | Ok () -> ()
  | Error e -> Alcotest.failf "exported trace rejected: %s" e);
  (* Wall time must never leak into the export. *)
  Alcotest.(check bool) "no wall field exported" false
    (Astring_like.contains json "wall")

let test_validator_rejects () =
  let reject name s =
    match Chrome.validate s with
    | Ok () -> Alcotest.failf "%s accepted" name
    | Error _ -> ()
  in
  reject "garbage" "not json";
  reject "missing ph"
    "{\"traceEvents\":[{\"name\":\"x\",\"pid\":1,\"tid\":1,\"ts\":0}]}";
  reject "unmatched B"
    "{\"traceEvents\":[{\"name\":\"x\",\"ph\":\"B\",\"pid\":1,\"tid\":1,\"ts\":0}]}";
  reject "mismatched E"
    "{\"traceEvents\":[{\"name\":\"x\",\"ph\":\"B\",\"pid\":1,\"tid\":1,\"ts\":0},\
     {\"name\":\"y\",\"ph\":\"E\",\"pid\":1,\"tid\":1,\"ts\":1}]}";
  reject "time going backwards"
    "{\"traceEvents\":[{\"name\":\"x\",\"ph\":\"I\",\"pid\":1,\"tid\":1,\"ts\":5},\
     {\"name\":\"y\",\"ph\":\"I\",\"pid\":1,\"tid\":1,\"ts\":1}]}";
  match
    Chrome.validate
      "{\"traceEvents\":[{\"name\":\"x\",\"ph\":\"B\",\"pid\":1,\"tid\":1,\"ts\":0},\
       {\"name\":\"x\",\"ph\":\"E\",\"pid\":1,\"tid\":1,\"ts\":2}]}"
  with
  | Ok () -> ()
  | Error e -> Alcotest.failf "well-formed pair rejected: %s" e

let suite =
  ( "obs",
    [
      quick "span basics" test_span_basics;
      quick "span close clamps" test_span_close_clamps;
      quick "disabled sink no-ops" test_disabled_sink_noops;
      quick "track names" test_track_names;
      quick "metrics golden json" test_metrics_golden_json;
      quick "metrics kind clash" test_metrics_kind_clash;
      quick "metrics: empty histogram renders null" test_metrics_empty_histogram;
      quick "metrics: single-sample percentile bounds"
        test_metrics_single_sample_bounds;
      quick "histogram percentile" test_histogram_percentile;
      quick "trader phase parity" test_phase_parity;
      quick "noop sink equivalence" test_noop_sink_equivalence;
      quick "trace determinism" test_trace_determinism;
      quick "exported trace validates" test_exported_trace_validates;
      quick "validator rejects malformed" test_validator_rejects;
    ] )
