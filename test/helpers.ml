(* Shared fixtures and assertions for the test suite. *)

module Ast = Qt_sql.Ast
module Interval = Qt_util.Interval

let parse = Qt_sql.Parser.parse

let check_query msg expected actual =
  Alcotest.(check string)
    msg
    (Qt_sql.Analysis.signature expected)
    (Qt_sql.Analysis.signature actual)

(* A two-relation schema matching the paper's telecom scenario, small
   enough to execute. *)
let telecom_federation ?(nodes = 8) ?(partitions = 4) ?(replicas = 1)
    ?(with_views = false) () =
  Qt_sim.Generator.telecom ~nodes ~customers:800 ~invoice_lines:4000
    ~key_domain:800
    ~placement:{ Qt_sim.Generator.partitions; replicas }
    ~with_views ()

let chain_federation ?(nodes = 6) ?(relations = 3) ?(partitions = 3) ?(replicas = 1)
    ?(co_located = true) () =
  Qt_sim.Generator.chain ~rows:600 ~key_domain:600 ~co_located ~nodes ~relations
    ~placement:{ Qt_sim.Generator.partitions; replicas }
    ()

(* The paper's revenue query, scaled to the small key domain. *)
let revenue_query ?range () =
  Qt_sim.Workload.telecom_revenue_by_office ?custid_range:range ()

let tables_equal_po a b =
  (* Positional, order-insensitive multiset equality: the oracle and an
     optimized plan may name aggregate columns differently but must agree
     cell-for-cell. *)
  let sa = Qt_exec.Table.sort_rows a and sb = Qt_exec.Table.sort_rows b in
  Array.length a.Qt_exec.Table.cols = Array.length b.Qt_exec.Table.cols
  && Qt_exec.Table.cardinality a = Qt_exec.Table.cardinality b
  && List.for_all2
       (fun r1 r2 -> Array.for_all2 Qt_exec.Value.equal r1 r2)
       sa.Qt_exec.Table.rows sb.Qt_exec.Table.rows

(* Optimize with QT, execute the plan, and compare against direct global
   evaluation.  The single most important assertion in the repository. *)
let assert_qt_correct ?(seed = 11) ?config federation query =
  let params = Qt_cost.Params.default in
  let config =
    Option.value config ~default:(Qt_core.Trader.default_config params)
  in
  match Qt_core.Trader.optimize config federation query with
  | Error e -> Alcotest.failf "QT failed to optimize: %s" e
  | Ok outcome ->
    let store = Qt_exec.Store.generate ~seed federation in
    Qt_exec.Naive.materialize_views store federation;
    let result = Qt_exec.Engine.run store federation outcome.plan in
    let oracle = Qt_exec.Naive.run_global store query in
    if not (tables_equal_po result oracle) then
      Alcotest.failf
        "QT plan result diverges from oracle for %s@.plan:@.%s@.got %d rows, oracle %d \
         rows"
        (Qt_sql.Analysis.to_string query)
        (Format.asprintf "%a" Qt_optimizer.Plan.pp outcome.plan)
        (Qt_exec.Table.cardinality result)
        (Qt_exec.Table.cardinality oracle);
    outcome

let quick name f = Alcotest.test_case name `Quick f
