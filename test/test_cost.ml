module Cost = Qt_cost.Cost
module Params = Qt_cost.Params
module Model = Qt_cost.Model

let quick = Helpers.quick
let p = Params.default

let test_cost_algebra () =
  let a = Cost.make ~cpu:1. ~io:2. ~net:3. () in
  let b = Cost.make ~cpu:0.5 () in
  Alcotest.(check (float 1e-9)) "response" 6. (Cost.response a);
  Alcotest.(check (float 1e-9)) "add" 6.5 (Cost.response (Cost.add a b));
  Alcotest.(check (float 1e-9)) "sum" 13. (Cost.response (Cost.sum [ a; a; b; b ]));
  Alcotest.(check (float 1e-9)) "scale" 12. (Cost.response (Cost.scale 2. a));
  Alcotest.(check (float 1e-9)) "zero" 0. (Cost.response Cost.zero);
  Alcotest.(check bool) "compare" true (Cost.compare b a < 0);
  Alcotest.(check bool) "finite" true (Cost.is_finite a);
  Alcotest.(check bool) "infinite" false (Cost.is_finite Cost.infinite)

let test_cost_par () =
  let a = Cost.make ~net:3. () and b = Cost.make ~net:5. () in
  Alcotest.(check (float 1e-9)) "par is max" 5. (Cost.response (Cost.par a b));
  Alcotest.(check (float 1e-9)) "par commutes" 5. (Cost.response (Cost.par b a));
  Alcotest.(check (float 1e-9)) "par with zero" 3.
    (Cost.response (Cost.par a Cost.zero))

let test_scan_monotonic () =
  let c1 = Cost.response (Model.scan p ~rows:1000. ~row_bytes:100 ()) in
  let c2 = Cost.response (Model.scan p ~rows:10000. ~row_bytes:100 ()) in
  Alcotest.(check bool) "more rows cost more" true (c2 > c1);
  let fast = Cost.response (Model.scan p ~io_factor:2.0 ~rows:10000. ~row_bytes:100 ()) in
  Alcotest.(check bool) "faster disk cheaper" true (fast < c2)

let test_join_models () =
  let hj =
    Cost.response
      (Model.hash_join p ~build_rows:100. ~probe_rows:1000. ~out_rows:500. ())
  in
  let nl =
    Cost.response
      (Model.nested_loop_join p ~outer_rows:100. ~inner_rows:1000. ~out_rows:500. ())
  in
  Alcotest.(check bool) "hash beats nested loop" true (hj < nl);
  let sorted = Cost.response (Model.sort p ~rows:10000. ()) in
  let scanned = Cost.response (Model.filter p ~rows:10000. ()) in
  Alcotest.(check bool) "sort beats linear pass" true (sorted > scanned)

let test_transfer () =
  let small = Cost.response (Model.transfer p ~rows:1. ~row_bytes:10) in
  let big = Cost.response (Model.transfer p ~rows:1_000_000. ~row_bytes:100) in
  Alcotest.(check bool) "latency floor" true (small >= p.Params.net_latency);
  Alcotest.(check bool) "volume dominates" true (big > 100. *. small);
  Alcotest.(check int) "bytes accounted" (p.Params.msg_overhead_bytes + 1000)
    (Model.transfer_bytes p ~rows:10. ~row_bytes:100)

let test_params_presets () =
  Alcotest.(check bool) "lan faster" true
    (Params.lan.Params.net_latency < Params.default.Params.net_latency);
  Alcotest.(check bool) "wan slower" true
    (Params.wan.Params.net_latency > Params.default.Params.net_latency);
  Alcotest.(check bool) "wan thin" true
    (Params.wan.Params.net_bandwidth < Params.lan.Params.net_bandwidth)

let prop_response_nonneg =
  QCheck2.Test.make ~name:"model costs are non-negative" ~count:300
    QCheck2.Gen.(pair (float_bound_exclusive 1e6) (int_range 1 1000))
    (fun (rows, row_bytes) ->
      let rows = Float.abs rows in
      Cost.response (Model.scan p ~rows ~row_bytes ()) >= 0.
      && Cost.response (Model.sort p ~rows ()) >= 0.
      && Cost.response (Model.transfer p ~rows ~row_bytes) >= 0.
      && Cost.response (Model.aggregate p ~rows ~groups:(rows /. 2.) ()) >= 0.)

let suite =
  ( "cost",
    [
      quick "cost algebra" test_cost_algebra;
      quick "cost par" test_cost_par;
      quick "scan monotonic" test_scan_monotonic;
      quick "join models" test_join_models;
      quick "transfer" test_transfer;
      quick "params presets" test_params_presets;
      QCheck_alcotest.to_alcotest prop_response_nonneg;
    ] )
