(* lib/pricing: arbitrage-free repricing over randomized workload
   signatures (property-tested on all three schema families), surge
   hysteresis determinism, the reservation refund invariant on a live
   stream, mix parsing, and bid-cache invalidation when the surge
   multiplier changes. *)

module Pricing = Qt_pricing.Pricing
module Market = Qt_market.Market
module Seller = Qt_core.Seller
module Workload = Qt_sim.Workload
module Arrivals = Qt_stream.Arrivals
module Sla = Qt_stream.Sla
open Helpers

let params = Qt_cost.Params.default

(* ------------------------------------------------------------------ *)
(* Price-function layer                                                 *)
(* ------------------------------------------------------------------ *)

(* Nested custid ranges over a plain (non-aggregated) scan give
   guaranteed containment chains: (0,199) determines (0,99) determines
   (50,99).  Aggregated templates are never comparable — a post-filter
   cannot be pushed below a GROUP BY — so this is where the price
   function's monotone repair has to do real work. *)
let customer_scan ~range:(lo, hi) =
  let custid = { Ast.rel = "c"; name = "custid" } in
  let office = { Ast.rel = "c"; name = "office" } in
  Ast.query
    ~select:[ Ast.Sel_col office; Ast.Sel_col custid ]
    ~from:[ { Ast.relation = "customer"; alias = "c" } ]
    ~where:[ Ast.Between (custid, lo, hi) ]
    ()

let nested_scans =
  [
    customer_scan ~range:(0, 199);
    customer_scan ~range:(0, 99);
    customer_scan ~range:(50, 99);
  ]

let batch_of_family = function
  | 0 -> Workload.telecom_templates ~seed:11 ~count:8 @ nested_scans
  | 1 -> Workload.tpch_templates ~seed:11 ~count:10
  | _ ->
    Workload.random_chain_queries ~seed:11 ~count:10 ~relations:3 ~max_joins:2

let strategy_of_int = function
  | 0 -> Pricing.Cost_plus
  | 1 -> Pricing.Surge
  | _ -> Pricing.Revenue_max

(* Whatever the raw quotes and strategy, the repaired assignment must be
   arbitrage-free: no contained query priced above a query that
   determines it. *)
let prop_reprice_arbitrage_free =
  QCheck2.Test.make ~name:"reprice is arbitrage-free on random quotes"
    ~count:60
    QCheck2.Gen.(triple (int_range 0 2) (int_range 0 9999) (int_range 0 2))
    (fun (family, seed, strat) ->
      let qs = Array.of_list (batch_of_family family) in
      let rng = Random.State.make [| seed |] in
      let raw =
        Array.map (fun q -> (q, 0.1 +. Random.State.float rng 10.)) qs
      in
      let quote =
        {
          Pricing.q_strategy = strategy_of_int strat;
          q_multiplier = 1. +. Random.State.float rng 3.;
          q_markup = Random.State.float rng 1.;
        }
      in
      let priced = Pricing.reprice quote raw in
      let priced_batch =
        Array.mapi (fun i (q, _) -> (q, priced.(i))) raw
      in
      let _, violations = Pricing.check_arbitrage priced_batch in
      violations = 0)

(* The repair only ever lowers: each repriced quote stays within the
   strategy multiplier of its raw quote, and never goes negative. *)
let prop_reprice_monotone_cap =
  QCheck2.Test.make ~name:"reprice caps at the strategy multiplier"
    ~count:60
    QCheck2.Gen.(triple (int_range 0 2) (int_range 0 9999) (int_range 0 2))
    (fun (family, seed, strat) ->
      let qs = Array.of_list (batch_of_family family) in
      let rng = Random.State.make [| seed |] in
      let raw =
        Array.map (fun q -> (q, 0.1 +. Random.State.float rng 10.)) qs
      in
      let quote =
        {
          Pricing.q_strategy = strategy_of_int strat;
          q_multiplier = 1. +. Random.State.float rng 3.;
          q_markup = Random.State.float rng 1.;
        }
      in
      let m = Pricing.quote_multiplier quote in
      let priced = Pricing.reprice quote raw in
      Array.for_all2
        (fun p (_, base) -> p >= 0. && p <= (m *. base) +. 1e-9)
        priced raw)

let test_reprice_repairs_adversarial_quotes () =
  (* Price the contained query above its superset on purpose: the audit
     must see the violation in the raw batch and none after repair. *)
  let qs = Array.of_list nested_scans in
  let raw = [| (qs.(0), 1.0); (qs.(1), 5.0); (qs.(2), 9.0) |] in
  let pairs, violations = Pricing.check_arbitrage raw in
  Alcotest.(check bool) "containment pairs found" true (pairs > 0);
  Alcotest.(check bool) "raw batch violates" true (violations > 0);
  let quote =
    { Pricing.q_strategy = Pricing.Cost_plus; q_multiplier = 1.; q_markup = 0. }
  in
  let priced = Pricing.reprice quote raw in
  let priced_batch = Array.mapi (fun i (q, _) -> (q, priced.(i))) raw in
  let pairs', violations' = Pricing.check_arbitrage priced_batch in
  Alcotest.(check bool) "pairs preserved" true (pairs' = pairs);
  Alcotest.(check int) "repaired batch is arbitrage-free" 0 violations';
  (* The superset's price is untouched; both subsets were capped to it. *)
  Alcotest.(check (float 1e-9)) "superset keeps its quote" 1.0 priced.(0);
  Alcotest.(check bool) "subsets capped at the superset" true
    (priced.(1) <= 1.0 +. 1e-9 && priced.(2) <= 1.0 +. 1e-9)

(* ------------------------------------------------------------------ *)
(* Surge hysteresis                                                     *)
(* ------------------------------------------------------------------ *)

let test_surge_hysteresis_deterministic () =
  let cfg =
    {
      Pricing.default_config with
      Pricing.mix = Pricing.uniform_mix Pricing.Surge;
      high_water = 0.9;
      low_water = 0.5;
    }
  in
  let occupancies = [ 0.2; 0.95; 0.7; 0.55; 0.4; 0.6; 0.92; 0.1 ] in
  let run () =
    let p = Pricing.create cfg in
    let states =
      List.map
        (fun occ ->
          Pricing.observe_occupancy p ~seller:0 ~occupancy:occ;
          Pricing.surging p ~seller:0)
        occupancies
    in
    (states, (Pricing.stats p).Pricing.p_surge_activations)
  in
  let states, activations = run () in
  (* Enter at >= high, hold anywhere above low, re-arm below low. *)
  Alcotest.(check (list bool))
    "hysteresis holds between the watermarks"
    [ false; true; true; true; false; false; true; false ]
    states;
  Alcotest.(check int) "each rising edge counted once" 2 activations;
  Alcotest.(check bool) "same sequence, same states" true (run () = (states, activations))

(* ------------------------------------------------------------------ *)
(* Reservations on a live stream                                        *)
(* ------------------------------------------------------------------ *)

let stream_run ~pricing () =
  let federation = telecom_federation ~nodes:4 () in
  let templates =
    Array.of_list (Workload.telecom_templates ~seed:11 ~count:6)
  in
  let arrivals =
    Arrivals.generate ~seed:13
      ~process:(Arrivals.Poisson { rate = 4.0 })
      ~horizon:(Arrivals.Count 150) ~templates:(Array.length templates)
      ~theta:1.1 ~mix:Sla.default_mix
  in
  let d = Market.default_stream_config params in
  let base = { d.Market.base with Market.pricing = Some pricing } in
  Market.run_stream { d with Market.base } federation ~templates arrivals

let reserve_config =
  {
    Pricing.default_config with
    Pricing.mix = Pricing.uniform_mix Pricing.Surge;
    reserve_priority = Some 1;
    reserve_premium = 0.25;
  }

let test_reservation_refund_invariant () =
  let s = stream_run ~pricing:reserve_config () in
  let p = Option.get s.Market.str_pricing in
  Alcotest.(check bool) "reservations were sold" true
    (p.Pricing.p_reserved_sold > 0);
  (* Conservation: every sold reservation either completed or was
     refunded on the deadline-cancellation path — none leak. *)
  Alcotest.(check int) "sold = completed + refunded"
    p.Pricing.p_reserved_sold
    (p.Pricing.p_reserved_completed + p.Pricing.p_reserved_refunded);
  Alcotest.(check bool) "fill rate in [0,1]" true
    (p.Pricing.p_reservation_fill >= 0. && p.Pricing.p_reservation_fill <= 1.);
  (* Per-seller counters aggregate exactly to the totals. *)
  let sum f = Qt_util.Listx.sum_by f p.Pricing.p_sellers in
  Alcotest.(check int) "per-seller sold sums" p.Pricing.p_reserved_sold
    (int_of_float (sum (fun x -> float_of_int x.Pricing.ps_reserved_sold)));
  Alcotest.(check (float 1e-6)) "per-seller revenue sums" p.Pricing.p_revenue
    (sum (fun x -> x.Pricing.ps_revenue));
  Alcotest.(check (float 1e-6)) "per-seller premiums sum"
    p.Pricing.p_reservation_revenue
    (sum (fun x -> x.Pricing.ps_reservation_revenue))

let test_stream_deterministic_with_pricing () =
  let a = Market.stream_to_json (stream_run ~pricing:reserve_config ()) in
  let b = Market.stream_to_json (stream_run ~pricing:reserve_config ()) in
  Alcotest.(check string) "same seed, same pricing run" a b

(* ------------------------------------------------------------------ *)
(* Mix parsing                                                          *)
(* ------------------------------------------------------------------ *)

let test_mix_parsing () =
  Alcotest.(check bool) "off is None" true
    (Pricing.mix_of_string "off" = Ok None);
  Alcotest.(check bool) "empty is None" true
    (Pricing.mix_of_string "" = Ok None);
  (match Pricing.mix_of_string "surge" with
  | Ok (Some m) ->
    Alcotest.(check bool) "bare strategy is uniform" true
      (m = Pricing.uniform_mix Pricing.Surge)
  | _ -> Alcotest.fail "bare strategy should parse");
  (match Pricing.mix_of_string "default=cost_plus,0=surge,3=revenue_max" with
  | Ok (Some m) ->
    Alcotest.(check bool) "default applies" true
      (m.Pricing.mix_default = Pricing.Cost_plus);
    Alcotest.(check bool) "overrides recorded" true
      (List.assoc 0 m.Pricing.mix_overrides = Pricing.Surge
      && List.assoc 3 m.Pricing.mix_overrides = Pricing.Revenue_max);
    (* Round trip through the printer. *)
    Alcotest.(check bool) "mix_to_string round-trips" true
      (Pricing.mix_of_string (Pricing.mix_to_string m) = Ok (Some m))
  | _ -> Alcotest.fail "k=v mix should parse");
  (match Pricing.mix_of_string "bogus" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown strategy must be rejected")

(* ------------------------------------------------------------------ *)
(* Bid-cache invalidation                                               *)
(* ------------------------------------------------------------------ *)

let test_bid_cache_invalidates_on_multiplier_change () =
  let fed = telecom_federation ~nodes:4 () in
  let schema = fed.Qt_catalog.Federation.schema in
  let node = Qt_catalog.Federation.node fed 0 in
  let cache = Seller.cache_create () in
  let q = revenue_query ~range:(0, 199) () in
  let config quote =
    { (Seller.default_config params) with Seller.pricing = Some quote }
  in
  let quote m =
    { Pricing.q_strategy = Pricing.Surge; q_multiplier = m; q_markup = 0. }
  in
  let respond c = Seller.respond ~cache c schema node ~requests:[ (q, 0.) ] in
  let r1 = respond (config (quote 1.0)) in
  let _r2 = respond (config (quote 1.0)) in
  let st = Seller.cache_stats cache in
  Alcotest.(check int) "identical pricing replays from cache" 1 st.Seller.hits;
  let r3 = respond (config (quote 2.0)) in
  let st' = Seller.cache_stats cache in
  Alcotest.(check int) "multiplier change invalidates the entry"
    (st.Seller.invalidations + 1) st'.Seller.invalidations;
  Alcotest.(check int) "no spurious replay" st.Seller.hits st'.Seller.hits;
  (* And the fresh pricing run actually reflects the new multiplier. *)
  let quoted (r : Seller.response) =
    match r.Seller.offers with
    | o :: _ -> o.Qt_core.Offer.quoted
    | [] -> Alcotest.fail "seller made no offer"
  in
  Alcotest.(check (float 1e-9)) "doubled multiplier doubles the quote"
    (2. *. quoted r1) (quoted r3)

let suite =
  ( "pricing",
    [
      QCheck_alcotest.to_alcotest prop_reprice_arbitrage_free;
      QCheck_alcotest.to_alcotest prop_reprice_monotone_cap;
      quick "reprice repairs an adversarial batch, audit sees pairs"
        test_reprice_repairs_adversarial_quotes;
      quick "surge hysteresis is deterministic with two activations"
        test_surge_hysteresis_deterministic;
      quick "reservations: sold = completed + refunded on a live stream"
        test_reservation_refund_invariant;
      quick "stream with pricing + reservations is deterministic"
        test_stream_deterministic_with_pricing;
      quick "mix parser: off, uniform, per-node overrides, round-trip"
        test_mix_parsing;
      quick "bid cache invalidates when the surge multiplier changes"
        test_bid_cache_invalidates_on_multiplier_change;
    ] )
