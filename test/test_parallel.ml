(* Bitset-vs-legacy DP oracle and parallel/serial parity.

   The refactor's contract is byte-identity: the bitset enumeration must
   reproduce the legacy string-list DP exactly (plans, costs, partials,
   tie-breaks), and any run on a domain pool must reproduce the serial
   run exactly.  The pool is clamped to the machine's core count, so on
   a single-core host the pooled paths degrade to serial — the oracle
   tests still bind the representation layer, and the parity tests bind
   the merge discipline wherever cores are available. *)

module Ast = Qt_sql.Ast
module Analysis = Qt_sql.Analysis
module Schema = Qt_catalog.Schema
module Estimate = Qt_stats.Estimate
module Cost = Qt_cost.Cost
module Plan = Qt_optimizer.Plan
module Dp = Qt_optimizer.Dp
module Dp_legacy = Qt_optimizer.Dp_legacy
module Bitset = Qt_optimizer.Bitset
module Pool = Qt_optimizer.Pool
module Listx = Qt_util.Listx
module Interval = Qt_util.Interval
module Trader = Qt_core.Trader
module Seller = Qt_core.Seller
module Market = Qt_market.Market
module Workload = Qt_sim.Workload
module Generator = Qt_sim.Generator

let quick = Helpers.quick
let params = Qt_cost.Params.default

(* ------------------------------------------------------------------ *)
(* Bitset: enumeration order must match the Listx counterparts          *)
(* ------------------------------------------------------------------ *)

(* Deliberately unsorted universe: bit rank is sorted order, while the
   enumerators follow the order of the list they are handed (FROM order
   in the DP) — the two must not be conflated. *)
let universe = [ "t3"; "t1"; "t4"; "t0"; "t2" ]

let test_bitset_subsets_of_size () =
  let ctx = Bitset.make universe in
  let bits = List.map (Bitset.bit ctx) universe in
  for k = 1 to List.length universe do
    let legacy =
      List.map (Bitset.of_list ctx) (Listx.subsets_of_size k universe)
    in
    Alcotest.(check (list int))
      (Printf.sprintf "subsets_of_size %d order" k)
      legacy
      (Bitset.subsets_of_size k bits)
  done

let test_bitset_nonempty_submasks () =
  let ctx = Bitset.make universe in
  let mask = Bitset.of_list ctx universe in
  let legacy =
    (* The legacy DP enumerated splits with [Listx.nonempty_subsets] over
       the subset's members in sorted order. *)
    List.map (Bitset.of_list ctx) (Listx.nonempty_subsets (Bitset.to_list ctx mask))
  in
  Alcotest.(check (list int)) "nonempty_submasks order" legacy
    (Bitset.nonempty_submasks mask)

let test_bitset_roundtrip () =
  let ctx = Bitset.make universe in
  List.iter
    (fun subset ->
      let m = Bitset.of_list ctx subset in
      Alcotest.(check (list string))
        "to_list is sorted" (List.sort compare subset) (Bitset.to_list ctx m);
      Alcotest.(check int) "card" (List.length subset) (Bitset.card m))
    (Listx.nonempty_subsets universe)

let test_bitset_connected_matches_analysis () =
  (* A 4-chain with one detached alias: connectivity over every subset
     must agree with the list-based BFS in Analysis. *)
  let q =
    Helpers.parse
      "SELECT a.val FROM ra a, rb b, rc c, rd d, ra e WHERE a.id = b.id AND \
       b.id = c.id AND c.id = d.id"
  in
  let aliases = Analysis.aliases q in
  let ctx = Bitset.make aliases in
  let adj = Bitset.adjacency ctx (List.map Analysis.predicate_aliases q.Ast.where) in
  List.iter
    (fun subset ->
      Alcotest.(check bool)
        (Printf.sprintf "connected {%s}" (String.concat "," subset))
        (Analysis.connected q subset)
        (Bitset.connected adj (Bitset.of_list ctx subset)))
    (Listx.nonempty_subsets aliases)

(* ------------------------------------------------------------------ *)
(* Pool: order, nesting, exceptions                                     *)
(* ------------------------------------------------------------------ *)

let with_pool domains f =
  let p = Pool.create ~domains in
  Fun.protect ~finally:(fun () -> Pool.shutdown p) (fun () -> f p)

let test_pool_map_preserves_order () =
  with_pool 4 @@ fun p ->
  let input = Array.init 100 Fun.id in
  let out = Pool.map p (fun i -> i * i) input in
  Alcotest.(check (array int)) "squares in order"
    (Array.map (fun i -> i * i) input)
    out

let test_pool_map_nests () =
  with_pool 4 @@ fun p ->
  let out =
    Pool.map p
      (fun i -> Array.fold_left ( + ) 0 (Pool.map p (fun j -> (10 * i) + j) (Array.init 5 Fun.id)))
      (Array.init 8 Fun.id)
  in
  Alcotest.(check (array int)) "nested map"
    (Array.init 8 (fun i -> (50 * i) + 10))
    out

exception Boom of int

let test_pool_map_propagates_exception () =
  with_pool 4 @@ fun p ->
  match Pool.map p (fun i -> if i = 7 then raise (Boom i) else i) (Array.init 16 Fun.id) with
  | _ -> Alcotest.fail "expected Boom"
  | exception Boom 7 -> ()

let test_pool_map_after_shutdown_is_serial () =
  let p = Pool.create ~domains:4 in
  Pool.shutdown p;
  let out = Pool.map p (fun i -> i + 1) (Array.init 10 Fun.id) in
  Alcotest.(check (array int)) "serial after shutdown"
    (Array.init 10 (fun i -> i + 1))
    out

(* ------------------------------------------------------------------ *)
(* DP oracle: bitset core vs the frozen legacy enumeration              *)
(* ------------------------------------------------------------------ *)

let scan_base schema (q : Ast.t) alias =
  match Analysis.relation_of_alias q alias with
  | None -> None
  | Some rel_name ->
    let r = Schema.find_relation_exn schema rel_name in
    Some
      (Plan.Scan
         {
           Plan.alias;
           rel = rel_name;
           range = Interval.full;
           scan_rows = float_of_int r.Schema.cardinality;
           row_bytes = r.Schema.row_bytes;
           node = 0;
         })

let check_same_result q (a : Dp.result) (b : Dp.result) =
  let pp_partial (p : Dp.partial) =
    Format.asprintf "{%s} rows=%.6f resp=%.6f@.%a"
      (String.concat "," p.Dp.subset)
      p.Dp.rows
      (Cost.response p.Dp.cost)
      Plan.pp p.Dp.plan
  in
  let label = Analysis.to_string q in
  Alcotest.(check (list string))
    ("partials: " ^ label)
    (List.map pp_partial a.Dp.partials)
    (List.map pp_partial b.Dp.partials);
  Alcotest.(check (option string))
    ("best: " ^ label)
    (Option.map pp_partial a.Dp.best)
    (Option.map pp_partial b.Dp.best);
  (* Masks carry the same membership the legacy subset lists do. *)
  let aliases = List.sort_uniq compare (Analysis.aliases q) in
  let ctx = Bitset.make aliases in
  List.iter
    (fun (p : Dp.partial) ->
      Alcotest.(check int)
        ("mask: " ^ label)
        (Bitset.of_list ctx p.Dp.subset)
        p.Dp.mask)
    b.Dp.partials

let oracle_queries () =
  let chain_feds =
    Generator.chain ~nodes:4 ~relations:5
      ~placement:{ Generator.partitions = 2; replicas = 1 }
      ()
  in
  let chain_schema = chain_feds.Qt_catalog.Federation.schema in
  let telecom = Helpers.telecom_federation () in
  let telecom_schema = telecom.Qt_catalog.Federation.schema in
  List.map (fun q -> (chain_schema, q))
    (Workload.random_chain_queries ~seed:7 ~count:12 ~relations:5 ~max_joins:4)
  @ List.map (fun q -> (telecom_schema, q)) (Workload.telecom_templates ~seed:5 ~count:8)

let test_dp_matches_legacy prune () =
  List.iter
    (fun (schema, q) ->
      let env = Estimate.env_of_schema schema q in
      let base = scan_base schema q in
      let legacy = Dp_legacy.optimize ~params ?prune ~env ~base q in
      let bitset = Dp.optimize ~params ?prune ~env ~base q in
      check_same_result q legacy bitset)
    (oracle_queries ())

let test_dp_pool_matches_serial () =
  with_pool 4 @@ fun pool ->
  List.iter
    (fun (schema, q) ->
      let env = Estimate.env_of_schema schema q in
      let base = scan_base schema q in
      let serial = Dp.optimize ~params ~env ~base q in
      let pooled = Dp.optimize ~params ~pool ~env ~base q in
      check_same_result q serial pooled)
    (oracle_queries ())

(* ------------------------------------------------------------------ *)
(* End-to-end parity: optimize / market / stream at domains 1/2/4       *)
(* ------------------------------------------------------------------ *)

let trader_config pool =
  {
    (Trader.default_config params) with
    Trader.pool;
    seller_template = { (Seller.default_config params) with Seller.pool };
  }

let test_trader_parity () =
  let federation = Helpers.telecom_federation ~nodes:6 ~replicas:2 () in
  let q = Helpers.revenue_query ~range:(0, 599) () in
  let serial =
    match Trader.optimize (trader_config None) federation q with
    | Ok o -> o
    | Error e -> Alcotest.failf "serial optimize failed: %s" e
  in
  List.iter
    (fun domains ->
      with_pool domains @@ fun pool ->
      match Trader.optimize (trader_config (Some pool)) federation q with
      | Error e -> Alcotest.failf "domains=%d optimize failed: %s" domains e
      | Ok o ->
        Alcotest.(check string)
          (Printf.sprintf "plan at domains=%d" domains)
          (Format.asprintf "%a" Plan.pp serial.Trader.plan)
          (Format.asprintf "%a" Plan.pp o.Trader.plan);
        Alcotest.(check (float 0.))
          (Printf.sprintf "cost at domains=%d" domains)
          (Cost.response serial.Trader.cost)
          (Cost.response o.Trader.cost);
        Alcotest.(check int)
          (Printf.sprintf "messages at domains=%d" domains)
          serial.Trader.stats.Trader.messages o.Trader.stats.Trader.messages)
    [ 2; 4 ]

let market_queries () =
  List.init 6 (fun i ->
      let lo = i mod 3 * 200 in
      Workload.telecom_revenue_by_office ~custid_range:(lo, lo + 199) ())

let market_config pool =
  {
    (Market.default_config params) with
    Market.trader = trader_config pool;
    pool;
  }

let test_market_parity () =
  let federation = Helpers.telecom_federation ~nodes:6 ~replicas:2 () in
  let serial = Market.run (market_config None) federation (market_queries ()) in
  List.iter
    (fun domains ->
      with_pool domains @@ fun pool ->
      let pooled =
        Market.run (market_config (Some pool)) federation (market_queries ())
      in
      Alcotest.(check string)
        (Printf.sprintf "market json at domains=%d" domains)
        (Market.to_json serial) (Market.to_json pooled))
    [ 2; 4 ]

let stream_run pool =
  let module Arrivals = Qt_stream.Arrivals in
  let module Sla = Qt_stream.Sla in
  let federation = Helpers.telecom_federation ~nodes:6 ~replicas:2 () in
  let templates = Array.of_list (Workload.telecom_templates ~seed:5 ~count:6) in
  let arrivals =
    Arrivals.generate ~seed:13
      ~process:(Arrivals.Poisson { rate = 2.0 })
      ~horizon:(Arrivals.Count 30) ~templates:(Array.length templates) ~theta:0.9
      ~mix:Sla.default_mix
  in
  let d = Market.default_stream_config params in
  let scfg =
    { d with Market.base = { (market_config pool) with Market.seed = d.Market.base.Market.seed } }
  in
  Market.stream_to_json (Market.run_stream scfg federation ~templates arrivals)

let test_stream_parity () =
  let serial = stream_run None in
  List.iter
    (fun domains ->
      with_pool domains @@ fun pool ->
      Alcotest.(check string)
        (Printf.sprintf "stream json at domains=%d" domains)
        serial
        (stream_run (Some pool)))
    [ 2; 4 ]

let suite =
  ( "parallel",
    [
      quick "bitset subsets_of_size matches Listx order" test_bitset_subsets_of_size;
      quick "bitset nonempty_submasks matches Listx order" test_bitset_nonempty_submasks;
      quick "bitset of_list/to_list/card roundtrip" test_bitset_roundtrip;
      quick "bitset connectivity matches Analysis.connected"
        test_bitset_connected_matches_analysis;
      quick "pool map preserves order" test_pool_map_preserves_order;
      quick "pool map nests without deadlock" test_pool_map_nests;
      quick "pool map re-raises worker exceptions" test_pool_map_propagates_exception;
      quick "pool map degrades to serial after shutdown"
        test_pool_map_after_shutdown_is_serial;
      quick "DP oracle: bitset matches legacy (exhaustive)"
        (test_dp_matches_legacy None);
      quick "DP oracle: bitset matches legacy (IDP 2,5)"
        (test_dp_matches_legacy (Some (2, 5)));
      quick "DP parity: pooled matches serial" test_dp_pool_matches_serial;
      quick "trader parity across domains" test_trader_parity;
      quick "market parity across domains" test_market_parity;
      quick "stream parity across domains" test_stream_parity;
    ] )
