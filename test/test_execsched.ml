(* Distributed execution scheduler: parity with the serial interpreter,
   same-seed determinism of the schedule, shared-result dedup across
   trades, and measured-load feedback steering execution onto replicas. *)

module Market = Qt_market.Market
module Admission = Qt_market.Admission
module Execsched = Qt_execsched.Execsched
module Engine = Qt_exec.Engine
module Store = Qt_exec.Store
module Naive = Qt_exec.Naive
module Table = Qt_exec.Table
open Helpers

let params = Qt_cost.Params.default

let exec_federation () = telecom_federation ~nodes:8 ~partitions:4 ~replicas:2 ()

(* Roomy admission (so steering, when tested, comes from execution
   backlog alone) with execution turned on. *)
let exec_config ?(workers = 1) ?(concurrency = 0) ?(exec_feedback = true)
    ?(share_results = true) () =
  {
    (Market.default_config params) with
    Market.concurrency;
    admission =
      {
        Admission.default_config with
        Admission.slots = 8;
        queue_limit = 8;
        load_per_contract = 0.;
      };
    execute =
      Some { Market.default_exec with workers; exec_feedback; share_results };
  }

let exec_queries n =
  List.init n (fun i ->
      let lo = i mod 2 * 200 in
      revenue_query ~range:(lo, lo + 199) ())

let exec_stats (s : Market.stats) =
  match s.Market.exec with
  | Some e -> e
  | None -> Alcotest.fail "expected exec stats on an executing run"

(* Byte-identical tables: same header (aliases and names, in order) and
   the same rows in the same order. *)
let tables_identical (a : Table.t) (b : Table.t) =
  a.Table.cols = b.Table.cols && a.Table.rows = b.Table.rows

let test_parity_with_serial_engine () =
  let federation = exec_federation () in
  let s = Market.run (exec_config ()) federation (exec_queries 4) in
  Alcotest.(check int) "all trades completed" 4 s.Market.completed;
  Alcotest.(check int) "every trade executed" 4
    (List.length s.Market.results);
  let store = Store.generate ~seed:Market.default_exec.Market.store_seed federation in
  Naive.materialize_views store federation;
  List.iter
    (fun (trade, plan, table) ->
      let serial = Engine.run store federation plan in
      if not (tables_identical table serial) then
        Alcotest.failf "trade %d: scheduled result differs from serial run" trade;
      (* And both must be the right answer. *)
      let oracle = Naive.run_global store (List.nth (exec_queries 4) trade) in
      Alcotest.(check bool)
        (Printf.sprintf "trade %d matches the oracle" trade)
        true (tables_equal_po table oracle))
    s.Market.results

let test_determinism () =
  let run () = Market.run (exec_config ()) (exec_federation ()) (exec_queries 4) in
  let a = run () and b = run () in
  Alcotest.(check string) "same seed replays byte-for-byte" (Market.to_json a)
    (Market.to_json b);
  let e = exec_stats a in
  Alcotest.(check bool) "tasks ran" true (e.Market.tasks_run > 0);
  Alcotest.(check bool) "execution extends the timeline" true
    (a.Market.makespan >= a.Market.trading_makespan)

let test_shared_results () =
  (* Two byte-identical queries: with feedback off both trades buy the
     same sub-queries from the same sellers, so sharing executes each
     remote answer once. *)
  let queries = [ revenue_query ~range:(0, 199) (); revenue_query ~range:(0, 199) () ] in
  let run share =
    Market.run
      (exec_config ~exec_feedback:false ~share_results:share ())
      (exec_federation ()) queries
  in
  let shared = run true and unshared = run false in
  let es = exec_stats shared and eu = exec_stats unshared in
  Alcotest.(check bool) "identical purchases share results" true
    (es.Market.shared_results >= 1);
  Alcotest.(check int) "sharing off executes everything" 0
    eu.Market.shared_results;
  Alcotest.(check bool) "sharing skips that many tasks" true
    (es.Market.tasks_run < eu.Market.tasks_run);
  (* Shared answers are the same answers. *)
  let digests (s : Market.stats) =
    List.map
      (fun (e : Market.exec_trade) -> (e.Market.et_trade, e.Market.et_digest))
      (exec_stats s).Market.exec_trades
  in
  Alcotest.(check (list (pair int int)))
    "identical results with and without sharing" (digests unshared)
    (digests shared)

let test_feedback_steers_execution () =
  (* Sequential trades all wanting the same (2x-replicated) partition,
     one worker per node, no admission load signal, and row work heavy
     relative to negotiation: without feedback every trade buys the same
     cheapest replica and execution piles up behind its single worker;
     with measured-backlog feedback the later trades see the hot
     replica's rising quotes and buy the idle copy.  Ranges are distinct
     so result sharing cannot hide the contention. *)
  let federation =
    Qt_sim.Generator.telecom ~nodes:8
      ~placement:{ Qt_sim.Generator.partitions = 4; replicas = 2 }
      ()
  in
  let queries = List.init 4 (fun i -> revenue_query ~range:(0, 960 + i) ()) in
  let run exec_feedback =
    Market.run (exec_config ~concurrency:1 ~exec_feedback ()) federation queries
  in
  let static = run false and feedback = run true in
  Alcotest.(check int) "static: all completed" 4 static.Market.completed;
  Alcotest.(check int) "feedback: all completed" 4 feedback.Market.completed;
  let sellers_of (s : Market.stats) =
    List.map
      (fun (t : Market.trade_stats) ->
        List.sort_uniq compare (List.map fst t.Market.contracts))
      s.Market.trades
  in
  (match sellers_of static with
  | first :: rest ->
    Alcotest.(check bool) "static load repeats the same sellers" true
      (List.for_all (( = ) first) rest)
  | [] -> Alcotest.fail "no trades");
  (match sellers_of feedback with
  | first :: rest ->
    Alcotest.(check bool) "feedback steers a later trade elsewhere" true
      (List.exists (( <> ) first) rest)
  | [] -> Alcotest.fail "no trades");
  let em (s : Market.stats) = (exec_stats s).Market.exec_makespan in
  Alcotest.(check bool)
    (Printf.sprintf "feedback reduces exec makespan (%.4f < %.4f)"
       (em feedback) (em static))
    true
    (em feedback < em static)

let test_run_concurrent_execute () =
  let config = Qt_sim.Workload_sim.default_config params in
  let r, s =
    Qt_sim.Workload_sim.run_concurrent
      ~admission:
        {
          Admission.default_config with
          Admission.slots = 8;
          queue_limit = 8;
          load_per_contract = 0.;
        }
      ~execute:Market.default_exec config (exec_federation ()) (exec_queries 3)
  in
  Alcotest.(check int) "no failures" 0 r.Qt_sim.Workload_sim.failures;
  Alcotest.(check bool) "exec makespan reported" true
    (r.Qt_sim.Workload_sim.exec_makespan > 0.);
  Alcotest.(check (float 1e-9))
    "total = max(trading, exec)"
    (Float.max r.Qt_sim.Workload_sim.trading_makespan
       r.Qt_sim.Workload_sim.exec_makespan)
    r.Qt_sim.Workload_sim.total_makespan;
  Alcotest.(check (float 1e-9))
    "market stats agree" s.Market.trading_makespan
    r.Qt_sim.Workload_sim.trading_makespan

let test_exec_spans_on_sim_clock () =
  let obs = Qt_obs.Obs.create () in
  let federation = exec_federation () in
  let s = Market.run ~obs (exec_config ()) federation (exec_queries 2) in
  let e = exec_stats s in
  let exec_spans =
    List.filter
      (fun (sp : Qt_obs.Obs.span) -> sp.Qt_obs.Obs.cat = "exec")
      (Qt_obs.Obs.spans obs)
  in
  Alcotest.(check int) "one exec span per task" e.Market.tasks_run
    (List.length exec_spans);
  (* Scheduled spans sit on the market's virtual timeline, bounded by the
     run's horizons, not on the interpreter's ordinal tick clock. *)
  List.iter
    (fun (sp : Qt_obs.Obs.span) ->
      Alcotest.(check bool) "span within the run" true
        (sp.Qt_obs.Obs.t0 >= 0. && sp.Qt_obs.Obs.t1 <= s.Market.makespan +. 1e-9))
    exec_spans

let suite =
  ( "execsched",
    [
      quick "scheduled tables equal serial Engine.run" test_parity_with_serial_engine;
      quick "same-seed execution schedule is deterministic" test_determinism;
      quick "identical remote purchases execute once" test_shared_results;
      quick "measured-load feedback steers trades to replicas"
        test_feedback_steers_execution;
      quick "run_concurrent reports three makespans" test_run_concurrent_execute;
      quick "exec spans carry sim timestamps" test_exec_spans_on_sim_clock;
    ] )
