(* The discrete-event runtime: event ordering, RPC timeout/retry
   accounting, fault injection, and trading on top of all of it. *)

module Runtime = Qt_runtime.Runtime
module Event_queue = Qt_runtime.Event_queue
module Fault_plan = Qt_runtime.Fault_plan
module Trader = Qt_core.Trader
module Plan = Qt_optimizer.Plan
module Offer = Qt_core.Offer

let params = Qt_cost.Params.default
let quick = Helpers.quick
let mk ?rpc ?faults ?(seed = 1) () = Runtime.create ?rpc ?faults ~params ~seed ()

(* ------------------------------------------------------------------ *)
(* Event ordering                                                       *)
(* ------------------------------------------------------------------ *)

let test_event_queue_orders_time_then_fifo () =
  let q = Event_queue.create () in
  Event_queue.push q ~time:2.0 "late";
  Event_queue.push q ~time:1.0 "tie-first";
  Event_queue.push q ~time:1.0 "tie-second";
  Event_queue.push q ~time:0.5 "early";
  Alcotest.(check int) "size" 4 (Event_queue.size q);
  Alcotest.(check (option (float 0.))) "peek" (Some 0.5) (Event_queue.peek_time q);
  let rec drain acc =
    match Event_queue.pop q with
    | None -> List.rev acc
    | Some (_, x) -> drain (x :: acc)
  in
  Alcotest.(check (list string))
    "time-ordered, FIFO on ties"
    [ "early"; "tie-first"; "tie-second"; "late" ]
    (drain []);
  Alcotest.(check bool) "empty after drain" true (Event_queue.is_empty q)

let test_scheduler_dispatch_order () =
  let t = mk () in
  let log = ref [] in
  let ev name = fun () -> log := name :: !log in
  Runtime.schedule t ~at:0.3 (ev "c");
  Runtime.schedule t ~at:0.1 (ev "a");
  Runtime.schedule t ~at:0.1 (ev "b");
  Runtime.schedule t ~at:0.2 (fun () ->
      (* An event scheduled in the past is clamped to the present. *)
      Runtime.schedule t ~at:0.05 (ev "clamped");
      (ev "mid") ());
  Runtime.run_until_idle t;
  Alcotest.(check (list string))
    "dispatch order" [ "a"; "b"; "mid"; "clamped"; "c" ] (List.rev !log);
  Alcotest.(check (float 1e-9)) "virtual clock at last event" 0.3 (Runtime.now t);
  Alcotest.(check int) "events counted" 5 (Runtime.stats t).Runtime.events

(* ------------------------------------------------------------------ *)
(* gather_round: replies, timeouts, retries                             *)
(* ------------------------------------------------------------------ *)

let test_gather_collects_live_replies () =
  let t = mk () in
  let targets = [ 3; 1; 2 ] in
  List.iter (Runtime.register t) targets;
  let round =
    Runtime.gather_round t ~src:(-1) ~targets ~request_bytes:100
      ~serve:(fun id -> (10 * id, 0.001, 200))
  in
  Alcotest.(check (list (pair int int)))
    "replies in target order"
    [ (3, 30); (1, 10); (2, 20) ]
    round.Runtime.replies;
  Alcotest.(check (list int)) "none unresponsive" [] round.Runtime.unresponsive;
  Alcotest.(check bool) "round took virtual time" true (round.Runtime.elapsed > 0.);
  let s = Runtime.stats t in
  Alcotest.(check int) "one request + one reply per target" 6 s.Runtime.messages;
  Alcotest.(check int) "no retries" 0 s.Runtime.retries;
  Alcotest.(check bool) "buyer clock advanced to resolution" true
    (Runtime.node_clock t (-1) >= round.Runtime.elapsed)

let test_timeout_retry_backoff_accounting () =
  (* A node dead from t=0 never answers: every attempt must time out,
     with the deadline backed off exponentially, and the round must
     resolve at exactly sum_i timeout * backoff^i. *)
  let rpc = { Runtime.timeout = 0.05; max_retries = 2; backoff = 2. } in
  let faults = Fault_plan.make ~crashes:[ Fault_plan.crash ~node:7 ~at:0. ] () in
  let t = mk ~rpc ~faults () in
  Runtime.register t 7;
  Runtime.register t 1;
  let round =
    Runtime.gather_round t ~src:(-1) ~targets:[ 7; 1 ] ~request_bytes:100
      ~serve:(fun id -> (id, 0.001, 200))
  in
  Alcotest.(check (list int)) "dead node unresponsive" [ 7 ] round.Runtime.unresponsive;
  Alcotest.(check (list (pair int int))) "live node replied" [ (1, 1) ]
    round.Runtime.replies;
  Alcotest.(check (float 1e-9))
    "round resolves at the backed-off deadline (0.05 + 0.1 + 0.2)" 0.35
    round.Runtime.elapsed;
  let s = Runtime.stats t in
  Alcotest.(check int) "two retries against the dead node" 2 s.Runtime.retries;
  Alcotest.(check int) "one abandoned RPC" 1 s.Runtime.gave_up;
  Alcotest.(check int) "crash fired" 1 s.Runtime.crashes;
  Alcotest.(check (list int)) "crashed list" [ 7 ] (Runtime.crashed t);
  (* 3 request attempts to the dead node + 1 request and 1 reply for the
     live one. *)
  Alcotest.(check int) "transmissions accounted" 5 s.Runtime.messages

let test_total_drop_means_unresponsive () =
  let rpc = { Runtime.timeout = 0.05; max_retries = 1; backoff = 2. } in
  let faults = Fault_plan.make ~drop_prob:1.0 () in
  let t = mk ~rpc ~faults () in
  let round =
    Runtime.gather_round t ~src:(-1) ~targets:[ 1; 2 ] ~request_bytes:100
      ~serve:(fun id -> (id, 0.001, 200))
  in
  Alcotest.(check (list (pair int int))) "no replies" [] round.Runtime.replies;
  Alcotest.(check (list int)) "all unresponsive" [ 1; 2 ] round.Runtime.unresponsive;
  let s = Runtime.stats t in
  (* Two attempts per target, every transmission lost — but each was put
     on the wire, so message accounting still sees them. *)
  Alcotest.(check int) "drops" 4 s.Runtime.drops;
  Alcotest.(check int) "messages include dropped ones" 4 s.Runtime.messages;
  Alcotest.(check int) "gave up on both" 2 s.Runtime.gave_up

let test_gather_deterministic_replay () =
  let faults = Fault_plan.make ~drop_prob:0.3 ~jitter:0.01 () in
  let rpc = { Runtime.timeout = 0.04; max_retries = 2; backoff = 1.5 } in
  let run () =
    let t = mk ~rpc ~faults ~seed:42 () in
    let r1 =
      Runtime.gather_round t ~src:(-1) ~targets:[ 1; 2; 3; 4 ] ~request_bytes:150
        ~serve:(fun id -> (id, 0.002, 300))
    in
    let r2 =
      Runtime.gather_round t ~src:(-1) ~targets:[ 2; 3 ] ~request_bytes:150
        ~serve:(fun id -> (-id, 0.002, 300))
    in
    (r1.Runtime.replies, r1.Runtime.unresponsive, r1.Runtime.elapsed,
     r2.Runtime.replies, r2.Runtime.elapsed, Runtime.stats t)
  in
  let a = run () and b = run () in
  Alcotest.(check bool) "same seed replays identically" true (a = b)

(* ------------------------------------------------------------------ *)
(* Fault-plan specs                                                     *)
(* ------------------------------------------------------------------ *)

let test_fault_spec_parsing () =
  let p = Fault_plan.of_spec "crash:2@0.5s,drop:0.05,jitter:0.01" in
  Alcotest.(check (list (pair int (float 0.))))
    "crashes"
    [ (2, 0.5) ]
    (List.map (fun (c : Fault_plan.crash) -> (c.node, c.at)) p.Fault_plan.crashes);
  Alcotest.(check (float 0.)) "drop" 0.05 p.Fault_plan.drop_prob;
  Alcotest.(check (float 0.)) "jitter" 0.01 p.Fault_plan.jitter;
  Alcotest.(check (option (float 0.))) "crash_time" (Some 0.5)
    (Fault_plan.crash_time p 2);
  Alcotest.(check (option (float 0.))) "no crash for others" None
    (Fault_plan.crash_time p 0);
  Alcotest.(check bool) "none is none" true (Fault_plan.is_none Fault_plan.none);
  Alcotest.check_raises "malformed spec rejected"
    (Failure "unknown fault kind \"flood\"") (fun () ->
      ignore (Fault_plan.of_spec "flood:1" : Fault_plan.t))

(* ------------------------------------------------------------------ *)
(* Trading on the runtime                                               *)
(* ------------------------------------------------------------------ *)

let revenue = Helpers.revenue_query ()

let test_mid_trade_crash_recovery () =
  (* A seller dies before the first RFQ reaches it: the buyer must give
     up on it after the backed-off retries, buy the partition from the
     surviving replica, and the resulting plan must still be exact. *)
  let fed = Helpers.telecom_federation ~nodes:8 ~partitions:4 ~replicas:2 () in
  let faults = Fault_plan.make ~crashes:[ Fault_plan.crash ~node:2 ~at:0.001 ] () in
  let rpc = { Runtime.timeout = 0.02; max_retries = 1; backoff = 2. } in
  match Qt_sim.Experiment.run_qt_faulty ~rpc ~faults ~params ~seed:5 fed revenue with
  | Error e -> Alcotest.fail e
  | Ok (_, outcome, rs) ->
    Alcotest.(check int) "crash fired" 1 rs.Runtime.crashes;
    Alcotest.(check bool) "buyer gave up on the dead seller" true
      (rs.Runtime.gave_up >= 1);
    Alcotest.(check bool) "timeouts triggered retries" true (rs.Runtime.retries >= 1);
    List.iter
      (fun (r : Plan.remote) ->
        if r.Plan.seller = 2 then Alcotest.fail "plan buys from the crashed node")
      (Plan.remote_leaves outcome.Trader.plan);
    (* The patched plan executes exactly on the surviving federation. *)
    let survivors =
      List.filter
        (fun (n : Qt_catalog.Node.t) -> n.node_id <> 2)
        fed.Qt_catalog.Federation.nodes
    in
    let reduced = Qt_catalog.Federation.create fed.schema survivors in
    let store = Qt_exec.Store.generate ~seed:17 reduced in
    let result = Qt_exec.Engine.run store reduced outcome.Trader.plan in
    let oracle = Qt_exec.Naive.run_global store revenue in
    Alcotest.(check bool) "plan exact without the dead node" true
      (Helpers.tables_equal_po result oracle)

let test_faulty_run_deterministic () =
  let fed = Helpers.telecom_federation ~nodes:8 ~partitions:4 ~replicas:2 () in
  let faults = Fault_plan.of_spec "crash:2@0.001s,drop:0.1,jitter:0.002" in
  let rpc = { Runtime.timeout = 0.02; max_retries = 2; backoff = 2. } in
  let run () =
    match Qt_sim.Experiment.run_qt_faulty ~rpc ~faults ~params ~seed:9 fed revenue with
    | Error e -> Alcotest.fail e
    | Ok (m, outcome, rs) ->
      ( m.Qt_sim.Experiment.plan_cost,
        m.Qt_sim.Experiment.sim_time,
        m.Qt_sim.Experiment.messages,
        List.map (fun (o : Offer.t) -> o.seller) outcome.Trader.purchased,
        rs )
  in
  let a = run () and b = run () in
  Alcotest.(check bool) "same (faults, seed) gives identical trade" true (a = b)

let test_fault_free_runtime_matches_legacy_plan () =
  (* With no faults the runtime is just a different clock model: the
     chosen plan must cost the same as the legacy synchronous path. *)
  let fed = Helpers.telecom_federation ~nodes:8 ~partitions:4 ~replicas:2 () in
  match
    ( Qt_sim.Experiment.run_qt ~params fed revenue,
      Qt_sim.Experiment.run_qt_faulty ~params ~seed:1 fed revenue )
  with
  | Ok (legacy, _), Ok (faulty, _, rs) ->
    Alcotest.(check (float 1e-9))
      "same plan cost" legacy.Qt_sim.Experiment.plan_cost
      faulty.Qt_sim.Experiment.plan_cost;
    Alcotest.(check int) "no drops" 0 rs.Runtime.drops;
    Alcotest.(check int) "no retries" 0 rs.Runtime.retries;
    Alcotest.(check int) "no crashes" 0 rs.Runtime.crashes
  | Error e, _ | _, Error e -> Alcotest.fail e

let suite =
  ( "runtime",
    [
      quick "event queue time then FIFO" test_event_queue_orders_time_then_fifo;
      quick "scheduler dispatch order" test_scheduler_dispatch_order;
      quick "gather collects live replies" test_gather_collects_live_replies;
      quick "timeout retry backoff accounting" test_timeout_retry_backoff_accounting;
      quick "total drop means unresponsive" test_total_drop_means_unresponsive;
      quick "gather deterministic replay" test_gather_deterministic_replay;
      quick "fault spec parsing" test_fault_spec_parsing;
      quick "mid-trade crash recovery" test_mid_trade_crash_recovery;
      quick "faulty run deterministic" test_faulty_run_deterministic;
      quick "fault-free runtime matches legacy plan"
        test_fault_free_runtime_matches_legacy_plan;
    ] )
