module Cost = Qt_cost.Cost
module Common = Qt_baseline.Common
module Omniscient = Qt_baseline.Omniscient
module Two_step = Qt_baseline.Two_step
module Trader = Qt_core.Trader

let quick = Helpers.quick
let parse = Helpers.parse
let params = Qt_cost.Params.default

let federation = Helpers.telecom_federation ~nodes:6 ~partitions:3 ()
let revenue = Helpers.revenue_query ()

let test_global_dp_finds_plan () =
  match Omniscient.global_dp ~params federation revenue with
  | Error e -> Alcotest.fail e
  | Ok r ->
    Alcotest.(check bool) "finite" true (Cost.is_finite r.Common.cost);
    Alcotest.(check bool) "messages = catalog pulls" true
      (r.Common.stats.messages = 2 * 6);
    Alcotest.(check bool) "clock advanced" true (r.Common.stats.sim_time > 0.)

let test_global_dp_is_lower_bound () =
  (* Full knowledge with exhaustive search can never be beaten by the
     other optimizers under the same (truthful) costs. *)
  let check q =
    match Omniscient.global_dp ~params federation q with
    | Error e -> Alcotest.fail e
    | Ok dp ->
      (match Trader.optimize (Trader.default_config params) federation q with
      | Ok qt ->
        Alcotest.(check bool) "dp <= qt" true
          (dp.Common.stats.plan_cost <= Cost.response qt.Trader.cost +. 1e-9)
      | Error e -> Alcotest.fail e);
      (match Omniscient.idp_m ~params federation q with
      | Ok idp ->
        Alcotest.(check bool) "dp <= idp" true
          (dp.Common.stats.plan_cost <= idp.Common.stats.plan_cost +. 1e-9)
      | Error e -> Alcotest.fail e);
      match Two_step.optimize ~params federation q with
      | Ok ts ->
        Alcotest.(check bool) "dp <= two-step" true
          (dp.Common.stats.plan_cost <= ts.Common.stats.plan_cost +. 1e-9)
      | Error e -> Alcotest.fail e
  in
  check revenue;
  check
    (parse
       "SELECT c.custname, il.charge FROM customer c, invoiceline il \
        WHERE c.custid = il.custid AND c.custid BETWEEN 0 AND 199")

let test_qt_matches_global_dp_when_cooperative () =
  (* The headline claim: trading with truthful sellers finds plans as
     good as full-knowledge exhaustive optimization on these workloads. *)
  match
    ( Omniscient.global_dp ~params federation revenue,
      Trader.optimize (Trader.default_config params) federation revenue )
  with
  | Ok dp, Ok qt ->
    Alcotest.(check bool) "within 10% of optimum" true
      (Cost.response qt.Trader.cost <= 1.1 *. dp.Common.stats.plan_cost +. 1e-9)
  | _ -> Alcotest.fail "optimization failed"

let test_two_step_plan_executes_correctly () =
  match Two_step.optimize ~params federation revenue with
  | Error e -> Alcotest.fail e
  | Ok r ->
    let store = Qt_exec.Store.generate ~seed:13 federation in
    let result = Qt_exec.Engine.run store federation r.Common.plan in
    let oracle = Qt_exec.Naive.run_global store revenue in
    Alcotest.(check bool) "two-step plan correct" true
      (Helpers.tables_equal_po result oracle)

let test_global_dp_plan_executes_correctly () =
  match Omniscient.global_dp ~params federation revenue with
  | Error e -> Alcotest.fail e
  | Ok r ->
    let store = Qt_exec.Store.generate ~seed:14 federation in
    let result = Qt_exec.Engine.run store federation r.Common.plan in
    let oracle = Qt_exec.Naive.run_global store revenue in
    Alcotest.(check bool) "global-dp plan correct" true
      (Helpers.tables_equal_po result oracle)

let test_staleness_degrades_centralized_not_qt () =
  (* Stale statistics mislead the centralized optimizers; QT sellers
     quote live local costs, so its plan quality is untouched. *)
  let fresh = Omniscient.idp_m ~params ~staleness:1. federation revenue in
  let stale = Omniscient.idp_m ~params ~staleness:8. ~seed:3 federation revenue in
  match (fresh, stale) with
  | Ok f, Ok s ->
    Alcotest.(check bool) "stale never better" true
      (s.Common.stats.plan_cost >= f.Common.stats.plan_cost -. 1e-9)
  | _ -> Alcotest.fail "optimization failed"

let test_perturb_offers_preserves_true_costs () =
  let offers, _ = Common.collect_offers ~params ~federation ~rounds:1 revenue in
  let perturbed = Common.perturb_offers ~seed:5 ~staleness:4. offers in
  List.iter2
    (fun (a : Qt_core.Offer.t) (b : Qt_core.Offer.t) ->
      Alcotest.(check (float 1e-12)) "true cost preserved" a.true_cost b.true_cost)
    offers perturbed;
  (* At least one quote must actually move. *)
  Alcotest.(check bool) "some quotes moved" true
    (List.exists2
       (fun (a : Qt_core.Offer.t) (b : Qt_core.Offer.t) ->
         Float.abs (a.quoted -. b.quoted) > 1e-9)
       offers perturbed)

let test_staleness_one_is_noop () =
  let offers, _ = Common.collect_offers ~params ~federation ~rounds:1 revenue in
  let same = Common.perturb_offers ~seed:5 ~staleness:1. offers in
  List.iter2
    (fun (a : Qt_core.Offer.t) (b : Qt_core.Offer.t) ->
      Alcotest.(check (float 1e-12)) "unchanged" a.quoted b.quoted)
    offers same

let test_two_step_misses_colocated_joins () =
  (* Two-step fixes the join order before placement, so it ships base
     relations even when nodes could serve pre-joined or pre-aggregated
     slices; with co-partitioned placements QT must be at least as good
     and usually strictly better. *)
  let fed = Helpers.chain_federation ~nodes:6 ~relations:3 ~partitions:3 () in
  let q = Qt_sim.Workload.chain_query ~joins:2 ~aggregate:true ~relations:3 () in
  match
    (Trader.optimize (Trader.default_config params) fed q, Two_step.optimize ~params fed q)
  with
  | Ok qt, Ok ts ->
    Alcotest.(check bool) "qt <= two-step" true
      (Cost.response qt.Trader.cost <= ts.Common.stats.plan_cost +. 1e-9)
  | _ -> Alcotest.fail "optimization failed"

let suite =
  ( "baseline",
    [
      quick "global dp finds plan" test_global_dp_finds_plan;
      quick "global dp lower bound" test_global_dp_is_lower_bound;
      quick "qt matches global dp" test_qt_matches_global_dp_when_cooperative;
      quick "two-step plan executes" test_two_step_plan_executes_correctly;
      quick "global-dp plan executes" test_global_dp_plan_executes_correctly;
      quick "staleness degrades centralized" test_staleness_degrades_centralized_not_qt;
      quick "perturb preserves true costs" test_perturb_offers_preserves_true_costs;
      quick "staleness=1 noop" test_staleness_one_is_noop;
      quick "two-step misses colocated joins" test_two_step_misses_colocated_joins;
    ] )
