module Ast = Qt_sql.Ast
module View = Qt_catalog.View
module Containment = Qt_views.Containment
module View_match = Qt_views.View_match

let quick = Helpers.quick
let parse = Helpers.parse

let federation = Helpers.telecom_federation ()
let schema = federation.Qt_catalog.Federation.schema

(* ------------------------------------------------------------------ *)
(* Containment                                                          *)
(* ------------------------------------------------------------------ *)

let test_where_implies_ranges () =
  let narrow = parse "SELECT c.custid FROM customer c WHERE c.custid BETWEEN 10 AND 20" in
  let wide = parse "SELECT c.custid FROM customer c WHERE c.custid BETWEEN 0 AND 99" in
  Alcotest.(check bool) "narrow implies wide" true (Containment.where_implies narrow wide);
  Alcotest.(check bool) "wide does not imply narrow" false
    (Containment.where_implies wide narrow)

let test_where_implies_syntactic () =
  let a =
    parse "SELECT c.custid FROM customer c WHERE c.custname = 'bob' AND c.custid = 5"
  in
  let b = parse "SELECT c.custid FROM customer c WHERE c.custname = 'bob'" in
  Alcotest.(check bool) "subset of conjuncts" true (Containment.where_implies a b);
  Alcotest.(check bool) "missing conjunct" false (Containment.where_implies b a)

let test_residual () =
  let req =
    parse
      "SELECT c.custid FROM customer c WHERE c.custid BETWEEN 10 AND 20 AND \
       c.custname = 'bob'"
  in
  let given = parse "SELECT c.custid FROM customer c WHERE c.custid BETWEEN 0 AND 99" in
  let residual = Containment.residual ~of_:req ~given in
  (* The name filter and the narrower range must both remain. *)
  Alcotest.(check int) "two residuals" 2 (List.length residual);
  let given2 = parse "SELECT c.custid FROM customer c WHERE c.custid BETWEEN 10 AND 20" in
  Alcotest.(check int) "range absorbed" 1
    (List.length (Containment.residual ~of_:req ~given:given2))

(* ------------------------------------------------------------------ *)
(* View matching                                                        *)
(* ------------------------------------------------------------------ *)

let spj_view =
  View.make ~name:"v_lines"
    ~definition:
      (parse
         "SELECT il.custid, il.charge FROM invoiceline il WHERE il.custid BETWEEN 0 \
          AND 399")
    ~rows:2000 ()

let agg_view =
  View.make ~name:"v_rev"
    ~definition:
      (parse
         "SELECT il.custid, SUM(il.charge), COUNT(*) FROM invoiceline il \
          GROUP BY il.custid")
    ~rows:800 ()

let test_spj_view_answers_contained_request () =
  let req =
    parse
      "SELECT il.charge FROM invoiceline il WHERE il.custid BETWEEN 100 AND 199"
  in
  match View_match.rewrite schema spj_view req with
  | None -> Alcotest.fail "expected a rewriting"
  | Some rw ->
    Alcotest.(check int) "single table over view" 1
      (List.length rw.query_over_view.Ast.from);
    (match rw.query_over_view.Ast.from with
    | [ { Ast.relation; _ } ] -> Alcotest.(check string) "from view" "v_lines" relation
    | _ -> Alcotest.fail "from shape");
    (* The residual range restriction must survive, mapped to the view
       column namespace. *)
    Alcotest.(check int) "residual kept" 1 (List.length rw.query_over_view.Ast.where)

let test_spj_view_rejects_uncovered_request () =
  (* Request range outside the view's slice. *)
  let req =
    parse "SELECT il.charge FROM invoiceline il WHERE il.custid BETWEEN 500 AND 599"
  in
  Alcotest.(check bool) "rejected" true (View_match.rewrite schema spj_view req = None);
  (* Request needs a column the view does not carry. *)
  let req2 =
    parse "SELECT il.invid FROM invoiceline il WHERE il.custid BETWEEN 0 AND 99"
  in
  Alcotest.(check bool) "missing column" true
    (View_match.rewrite schema spj_view req2 = None)

let test_agg_view_rollup () =
  (* Coarser regrouping: total per customer -> global total.  SUM rolls up
     as SUM of partial SUMs, COUNT as SUM of partial COUNTs. *)
  let req = parse "SELECT SUM(il.charge), COUNT(*) FROM invoiceline il" in
  match View_match.rewrite schema agg_view req with
  | None -> Alcotest.fail "expected a rollup rewriting"
  | Some rw ->
    (match rw.query_over_view.Ast.select with
    | [ Ast.Sel_agg (Ast.Sum, Some a); Ast.Sel_agg (Ast.Sum, Some b) ] ->
      Alcotest.(check string) "sum source" "sum_il_charge" a.Ast.name;
      Alcotest.(check string) "count source" "count_star" b.Ast.name
    | _ -> Alcotest.fail "rollup select shape");
    Alcotest.(check int) "no grouping" 0 (List.length rw.query_over_view.Ast.group_by)

let test_agg_view_same_grouping () =
  let req = parse "SELECT il.custid, SUM(il.charge) FROM invoiceline il GROUP BY il.custid" in
  match View_match.rewrite schema agg_view req with
  | None -> Alcotest.fail "expected a rewriting"
  | Some rw ->
    Alcotest.(check int) "grouped by view col" 1
      (List.length rw.query_over_view.Ast.group_by)

let test_agg_view_rejects_avg () =
  let req = parse "SELECT AVG(il.charge) FROM invoiceline il" in
  Alcotest.(check bool) "AVG does not roll up" true
    (View_match.rewrite schema agg_view req = None)

let test_agg_view_rejects_finer_grouping () =
  (* The request groups by a column the view aggregated away. *)
  let req =
    parse "SELECT il.invid, SUM(il.charge) FROM invoiceline il GROUP BY il.invid"
  in
  Alcotest.(check bool) "finer grouping rejected" true
    (View_match.rewrite schema agg_view req = None)

let test_agg_view_residual_on_group_col () =
  let req =
    parse
      "SELECT il.custid, SUM(il.charge) FROM invoiceline il \
       WHERE il.custid BETWEEN 0 AND 99 GROUP BY il.custid"
  in
  (match View_match.rewrite schema agg_view req with
  | None -> Alcotest.fail "group-column filter should be allowed"
  | Some rw ->
    Alcotest.(check int) "residual mapped" 1 (List.length rw.query_over_view.Ast.where));
  (* Filtering on an aggregated-away column is not answerable. *)
  let req2 =
    parse
      "SELECT il.custid, SUM(il.charge) FROM invoiceline il \
       WHERE il.linenum = 1 GROUP BY il.custid"
  in
  Alcotest.(check bool) "non-group filter rejected" true
    (View_match.rewrite schema agg_view req2 = None)

let test_view_rejects_different_relations () =
  let req = parse "SELECT c.custid FROM customer c" in
  Alcotest.(check bool) "different relation" true
    (View_match.rewrite schema agg_view req = None)

let test_view_schema_shape () =
  let rel = View_match.view_schema schema agg_view in
  Alcotest.(check int) "three columns" 3 (List.length rel.Qt_catalog.Schema.attributes);
  Alcotest.(check int) "cardinality" 800 rel.Qt_catalog.Schema.cardinality;
  let names = List.map (fun a -> a.Qt_catalog.Schema.attr_name) rel.attributes in
  Alcotest.(check (list string)) "output names"
    [ "il_custid"; "sum_il_charge"; "count_star" ]
    names

let test_output_name () =
  Alcotest.(check string) "col" "il_custid"
    (View_match.output_name (Ast.Sel_col { Ast.rel = "il"; name = "custid" }));
  Alcotest.(check string) "agg" "sum_il_charge"
    (View_match.output_name
       (Ast.Sel_agg (Ast.Sum, Some { Ast.rel = "il"; name = "charge" })));
  Alcotest.(check string) "count star" "count_star"
    (View_match.output_name (Ast.Sel_agg (Ast.Count, None)))

let suite =
  ( "views",
    [
      quick "where_implies ranges" test_where_implies_ranges;
      quick "where_implies syntactic" test_where_implies_syntactic;
      quick "residual" test_residual;
      quick "spj view answers contained request" test_spj_view_answers_contained_request;
      quick "spj view rejections" test_spj_view_rejects_uncovered_request;
      quick "agg view rollup" test_agg_view_rollup;
      quick "agg view same grouping" test_agg_view_same_grouping;
      quick "agg view rejects AVG" test_agg_view_rejects_avg;
      quick "agg view rejects finer grouping" test_agg_view_rejects_finer_grouping;
      quick "agg view residual rules" test_agg_view_residual_on_group_col;
      quick "view rejects different relations" test_view_rejects_different_relations;
      quick "view schema shape" test_view_schema_shape;
      quick "output name" test_output_name;
    ] )
