(* Federation cache tier: statement/result cache mechanics (LRU ticks,
   byte budget, selective vs epoch invalidation), market integration
   (no-hit neutrality, result hits oracle-checked, statement hits
   re-admitted), stale-hit impossibility across a catalog change, and
   stream determinism with the cache on across domain counts. *)

module Market = Qt_market.Market
module Tier = Qt_cache.Tier
module Statement_cache = Qt_cache.Statement_cache
module Result_cache = Qt_cache.Result_cache
module Analysis = Qt_sql.Analysis
module Arrivals = Qt_stream.Arrivals
module Sla = Qt_stream.Sla
module Workload = Qt_sim.Workload
open Helpers

let params = Qt_cost.Params.default

(* A trivially valid plan to stuff into cache entries: whatever QT buys
   for a small revenue slice. *)
let some_plan =
  lazy
    (let federation = telecom_federation ~nodes:4 () in
     match
       Qt_core.Trader.optimize
         (Qt_core.Trader.default_config params)
         federation
         (revenue_query ~range:(0, 99) ())
     with
     | Ok o -> o.Qt_core.Trader.plan
     | Error e -> Alcotest.failf "fixture optimization failed: %s" e)

let sig_of_range (lo, hi) = Analysis.Sig.of_ast (revenue_query ~range:(lo, hi) ())

(* ------------------------------------------------------------------ *)
(* Statement cache                                                      *)
(* ------------------------------------------------------------------ *)

let stmt_insert c sg ~sources =
  Statement_cache.insert c sg ~plan:(Lazy.force some_plan) ~plan_cost:1.0
    ~contracts:[ (0, 1.0) ] ~sources

let test_stmt_lru () =
  let c = Statement_cache.create ~max_entries:2 () in
  let s0 = sig_of_range (0, 9)
  and s1 = sig_of_range (10, 19)
  and s2 = sig_of_range (20, 29) in
  stmt_insert c s0 ~sources:[];
  stmt_insert c s1 ~sources:[];
  (* Touch s0 so s1 is the LRU victim. *)
  Alcotest.(check bool) "s0 hit" true
    (Statement_cache.find c ~fingerprint:(fun _ -> 0) s0 <> None);
  stmt_insert c s2 ~sources:[];
  Alcotest.(check int) "capacity held" 2 (Statement_cache.length c);
  Alcotest.(check bool) "LRU victim evicted" true
    (Statement_cache.find c ~fingerprint:(fun _ -> 0) s1 = None);
  Alcotest.(check bool) "recently used survives" true
    (Statement_cache.find c ~fingerprint:(fun _ -> 0) s0 <> None);
  let st = Statement_cache.stats c in
  Alcotest.(check int) "one eviction" 1 st.Statement_cache.evictions;
  Alcotest.(check int) "misses counted" 1 st.Statement_cache.misses

let test_stmt_selective_invalidation () =
  (* An entry is valid while the nodes it buys from are unchanged; a
     fingerprint bump on an uninvolved node must not invalidate it. *)
  let c = Statement_cache.create ~max_entries:8 () in
  let sg = sig_of_range (0, 49) in
  stmt_insert c sg ~sources:[ (0, 100); (2, 200) ];
  let fp_with ~node1 ~node0 = function
    | 0 -> node0
    | 1 -> node1
    | 2 -> 200
    | _ -> 0
  in
  Alcotest.(check bool) "valid under recorded fingerprints" true
    (Statement_cache.find c ~fingerprint:(fp_with ~node1:7 ~node0:100) sg <> None);
  (* Node 1 changes: not a source of this plan, entry stays valid. *)
  Alcotest.(check bool) "uninvolved node change ignored" true
    (Statement_cache.find c ~fingerprint:(fp_with ~node1:99 ~node0:100) sg <> None);
  (* Node 0 changes: plan buys from it, entry must drop. *)
  Alcotest.(check bool) "source node change invalidates" true
    (Statement_cache.find c ~fingerprint:(fp_with ~node1:7 ~node0:555) sg = None);
  let st = Statement_cache.stats c in
  Alcotest.(check int) "exactly one invalidation" 1 st.Statement_cache.invalidations;
  Alcotest.(check int) "entry gone" 0 (Statement_cache.length c)

(* ------------------------------------------------------------------ *)
(* Result cache                                                         *)
(* ------------------------------------------------------------------ *)

let table_of_rows n =
  Qt_exec.Table.create
    [|
      { Qt_exec.Table.alias = "t"; name = "a" };
      { Qt_exec.Table.alias = "t"; name = "b" };
    |]
    (List.init n (fun i -> [| Qt_exec.Value.V_int i; Qt_exec.Value.V_int (2 * i) |]))

let result_insert c sg ~rows ~epoch =
  Result_cache.insert c sg ~table:(table_of_rows rows)
    ~plan:(Lazy.force some_plan) ~plan_cost:1.0 ~suppliers:[ (0, 1.0) ] ~epoch

let test_result_byte_budget () =
  let budget = 2 * Result_cache.approx_bytes (table_of_rows 10) in
  let c = Result_cache.create ~max_entries:100 ~max_bytes:budget () in
  result_insert c (sig_of_range (0, 9)) ~rows:10 ~epoch:1;
  result_insert c (sig_of_range (10, 19)) ~rows:10 ~epoch:1;
  Alcotest.(check bool) "budget holds two entries" true
    (Result_cache.bytes_held c <= budget && Result_cache.length c = 2);
  (* A third table forces the LRU entry out to stay under budget. *)
  result_insert c (sig_of_range (20, 29)) ~rows:10 ~epoch:1;
  Alcotest.(check int) "evicted down to budget" 2 (Result_cache.length c);
  Alcotest.(check bool) "oldest insertion was the victim" true
    (Result_cache.find c ~epoch:1 (sig_of_range (0, 9)) = None);
  Alcotest.(check int) "eviction counted" 1
    (Result_cache.stats c).Result_cache.evictions;
  (* An answer larger than the whole budget is not cached at all. *)
  result_insert c (sig_of_range (30, 39)) ~rows:1000 ~epoch:1;
  Alcotest.(check bool) "oversized answer skipped" true
    (Result_cache.find c ~epoch:1 (sig_of_range (30, 39)) = None)

let test_result_epoch_invalidation () =
  let c = Result_cache.create ~max_entries:8 ~max_bytes:(1 lsl 20) () in
  let sg = sig_of_range (0, 9) in
  result_insert c sg ~rows:5 ~epoch:41;
  Alcotest.(check bool) "hit under the recorded epoch" true
    (Result_cache.find c ~epoch:41 sg <> None);
  (* Any epoch change drops the entry — a stale answer is unreachable. *)
  Alcotest.(check bool) "changed epoch never serves" true
    (Result_cache.find c ~epoch:42 sg = None);
  Alcotest.(check int) "invalidation counted" 1
    (Result_cache.stats c).Result_cache.invalidations;
  Alcotest.(check int) "entry dropped eagerly" 0 (Result_cache.length c)

(* ------------------------------------------------------------------ *)
(* Market integration                                                   *)
(* ------------------------------------------------------------------ *)

let tier ?(placement = Tier.Shared) ?(lookup_latency = 0.) ?(fraction = 0.25) ()
    =
  Tier.create
    {
      Tier.default_config with
      Tier.placement;
      lookup_latency;
      hit_price_fraction = fraction;
    }

let market_config ?qcache ?execute () =
  {
    (Market.default_config params) with
    Market.execute =
      (if Option.value execute ~default:false then Some Market.default_exec
       else None);
    qcache;
  }

let trade_summaries (s : Market.stats) =
  List.map
    (fun (t : Market.trade_stats) ->
      (t.Market.status, t.Market.plan_cost, t.Market.contracts))
    s.Market.trades

let test_market_no_hit_neutrality () =
  (* All-distinct queries, zero lookup latency: the cache observes every
     trade but changes nothing. *)
  let federation = telecom_federation ~nodes:4 () in
  let queries =
    List.init 4 (fun i -> revenue_query ~range:(100 * i, (100 * i) + 99) ())
  in
  let off = Market.run (market_config ()) federation queries in
  let q = tier ~lookup_latency:0. () in
  let on = Market.run (market_config ~qcache:q ()) federation queries in
  Alcotest.(check bool) "same trades, costs and contracts" true
    (trade_summaries off = trade_summaries on);
  Alcotest.(check (float 1e-9)) "same makespan" off.Market.makespan
    on.Market.makespan;
  let qs = Option.get on.Market.qcache in
  Alcotest.(check int) "no statement hits" 0 qs.Tier.stmt.Statement_cache.hits;
  Alcotest.(check int) "no trades avoided" 0 qs.Tier.trades_avoided

let oracle_check federation queries (s : Market.stats) =
  let store =
    Qt_exec.Store.generate ~seed:Market.default_exec.Market.store_seed federation
  in
  Qt_exec.Naive.materialize_views store federation;
  List.iter
    (fun (trade, _plan, table) ->
      let oracle = Qt_exec.Naive.run_global store (List.nth queries trade) in
      if not (tables_equal_po table oracle) then
        Alcotest.failf "trade %d: cache-served answer diverges from oracle" trade)
    s.Market.results

let test_market_result_hits_oracle_checked () =
  (* Warm the tier with one executed run, then re-run the same queries:
     every trade of the second run is a result hit at probe time — no
     trading, no execution — and every delivered answer must still equal
     direct evaluation. *)
  let federation = telecom_federation ~nodes:4 () in
  let queries = List.init 3 (fun _ -> revenue_query ~range:(0, 199) ()) in
  let q = tier () in
  let config =
    { (market_config ~qcache:q ~execute:true ()) with Market.concurrency = 1 }
  in
  let _warm = Market.run config federation queries in
  let before = Tier.stats q in
  let s = Market.run config federation queries in
  Alcotest.(check int) "all complete" 3 s.Market.completed;
  let qs = Option.get s.Market.qcache in
  Alcotest.(check int) "every trade is a result hit" 3
    (qs.Tier.result.Result_cache.hits - before.Tier.result.Result_cache.hits);
  Alcotest.(check int) "three executions avoided" 3
    (qs.Tier.executions_avoided - before.Tier.executions_avoided);
  Alcotest.(check bool) "discounted revenue settled" true
    (qs.Tier.hit_revenue > before.Tier.hit_revenue);
  (match s.Market.exec with
  | Some e -> Alcotest.(check int) "nothing executed on a full-hit run" 0
      e.Market.tasks_run
  | None -> Alcotest.fail "execution stats expected");
  Alcotest.(check int) "all answers still delivered" 3
    (List.length s.Market.results);
  oracle_check federation queries s

let test_market_statement_hits () =
  (* Without --execute there is nothing to put in the result cache, so
     repeats hit the statement cache and go straight to admission with
     the remembered contracts.  The tier's require-repeat admission
     filter suppresses the first insert (a one-off proves nothing), so
     the signature is cached after its second trade and the remaining
     two repeats hit. *)
  let federation = telecom_federation ~nodes:4 () in
  let queries = List.init 4 (fun _ -> revenue_query ~range:(0, 199) ()) in
  let q = tier () in
  let config = { (market_config ~qcache:q ()) with Market.concurrency = 1 } in
  let s = Market.run config federation queries in
  Alcotest.(check int) "all complete" 4 s.Market.completed;
  let qs = Option.get s.Market.qcache in
  Alcotest.(check int) "two statement hits" 2 qs.Tier.stmt.Statement_cache.hits;
  Alcotest.(check int) "two trades avoided" 2 qs.Tier.trades_avoided;
  Alcotest.(check int) "first insert suppressed" 1
    qs.Tier.stmt.Statement_cache.suppressed;
  let costs =
    List.map (fun (t : Market.trade_stats) -> t.Market.plan_cost) s.Market.trades
  in
  (* The cached entry records the second (admitting) trade's plan, so
     every hit re-admits at that cost. *)
  (match costs with
  | _first :: second :: rest ->
    List.iter
      (Alcotest.(check (float 1e-9)) "cached plan re-admitted at cached cost"
         second)
      rest
  | _ -> Alcotest.fail "expected at least two trades")

let test_stale_hit_impossible () =
  (* Fill the tier against federation A, then run the same tier against a
     grown federation B: every cached answer must be invalidated, nothing
     stale served, and all fresh answers must match B's oracle. *)
  let fed_a = telecom_federation ~nodes:4 () in
  let fed_b =
    Qt_sim.Generator.telecom ~nodes:4 ~customers:900 ~invoice_lines:4500
      ~key_domain:800
      ~placement:{ Qt_sim.Generator.partitions = 4; replicas = 1 }
      ()
  in
  Alcotest.(check bool) "catalog change moves the epoch" true
    (Tier.epoch_of fed_a <> Tier.epoch_of fed_b);
  let queries = List.init 3 (fun _ -> revenue_query ~range:(0, 199) ()) in
  let q = tier () in
  let config =
    { (market_config ~qcache:q ~execute:true ()) with Market.concurrency = 1 }
  in
  let _warm = Market.run config fed_a queries in
  let warm_stats = Tier.stats q in
  Alcotest.(check bool) "warm run cached results" true
    (warm_stats.Tier.result_bytes_held > 0);
  let s = Market.run config fed_b queries in
  let qs = Option.get s.Market.qcache in
  Alcotest.(check bool) "epoch change invalidated the cached answer" true
    (qs.Tier.result.Result_cache.invalidations
    > warm_stats.Tier.result.Result_cache.invalidations);
  (* The second run's answers are all fresh under B's data. *)
  Alcotest.(check int) "all complete on B" 3 s.Market.completed;
  let store =
    Qt_exec.Store.generate ~seed:Market.default_exec.Market.store_seed fed_b
  in
  Qt_exec.Naive.materialize_views store fed_b;
  List.iter
    (fun (trade, _plan, table) ->
      let oracle = Qt_exec.Naive.run_global store (List.nth queries trade) in
      if not (tables_equal_po table oracle) then
        Alcotest.failf "trade %d: stale answer served after catalog change" trade)
    s.Market.results

let test_shared_beats_client_on_repeats () =
  (* Same repeated workload, client-placement cold misses multiply: eight
     buyers land on eight distinct per-client caches (trade mod clients),
     so nobody reuses anything, while the shared tier serves every repeat
     after the first trade.  Counted via trades_avoided, which only
     counts successful serves (a find-hit whose admission rejects can
     probe again, so raw hit counts may exceed the repeat count). *)
  let federation = telecom_federation ~nodes:4 () in
  let queries = List.init 8 (fun _ -> revenue_query ~range:(0, 199) ()) in
  let run placement =
    let q = tier ~placement () in
    let config = { (market_config ~qcache:q ()) with Market.concurrency = 1 } in
    let s = Market.run config federation queries in
    Option.get s.Market.qcache
  in
  let shared = run Tier.Shared and client = run Tier.Client in
  (* Not necessarily all 7: the require-repeat filter spends the first
     insert proving the signature repeats, re-admitting the same
     contracts loads the sellers, and a late repeat's admission can
     reject, falling back to a fresh trade — that fallback is the
     marketplace working as intended. *)
  Alcotest.(check bool) "shared serves most repeats" true
    (shared.Tier.trades_avoided >= 4);
  Alcotest.(check bool) "admission filter suppressed a first sighting" true
    (shared.Tier.stmt.Statement_cache.suppressed >= 1);
  Alcotest.(check int) "client caches are all cold" 0 client.Tier.trades_avoided;
  Alcotest.(check bool) "shared hit count dominates" true
    (shared.Tier.stmt.Statement_cache.hits
    > client.Tier.stmt.Statement_cache.hits)

(* ------------------------------------------------------------------ *)
(* Stream integration                                                   *)
(* ------------------------------------------------------------------ *)

let tpch_federation () =
  Qt_sim.Generator.tpch ~nodes:4 ~customers:300 ~orders:600 ~lineitems:2400
    ~suppliers:40
    ~placement:{ Qt_sim.Generator.partitions = 2; replicas = 1 }
    ()

let stream_run ?pool ?qcache () =
  let federation = tpch_federation () in
  let templates = Array.of_list (Workload.tpch_templates ~seed:11 ~count:6) in
  let arrivals =
    Arrivals.generate ~seed:13
      ~process:(Arrivals.Poisson { rate = 0.4 })
      ~horizon:(Arrivals.Count 24) ~templates:(Array.length templates) ~theta:1.1
      ~mix:Sla.default_mix
  in
  let d = Market.default_stream_config params in
  let base =
    {
      d.Market.base with
      Market.execute = Some Market.default_exec;
      qcache;
      pool;
      trader =
        { d.Market.base.Market.trader with Qt_core.Trader.pool };
    }
  in
  Market.run_stream { d with Market.base } federation ~templates arrivals

let test_stream_cache_deterministic_across_domains () =
  let serial = Market.stream_to_json (stream_run ~qcache:(tier ()) ()) in
  let pool = Qt_optimizer.Pool.create ~domains:4 in
  Fun.protect
    ~finally:(fun () -> Qt_optimizer.Pool.shutdown pool)
    (fun () ->
      let pooled =
        Market.stream_to_json (stream_run ~pool ~qcache:(tier ()) ())
      in
      Alcotest.(check string) "tpch stream with cache: domains 1 = domains 4"
        serial pooled)

let test_stream_class_counters () =
  let s = stream_run ~qcache:(tier ()) () in
  let qs = Option.get s.Market.str_qcache in
  let class_hits =
    Qt_util.Listx.sum_by
      (fun (c : Market.class_stats) -> float_of_int c.Market.cs_cache_hits)
      s.Market.str_classes
  in
  Alcotest.(check int) "per-class hits sum to trades avoided"
    qs.Tier.trades_avoided (int_of_float class_hits);
  List.iter
    (fun (c : Market.class_stats) ->
      if c.Market.cs_arrivals = 0 then
        Alcotest.(check (float 1e-9)) "empty class has zero hit rate" 0.
          c.Market.cs_cache_hit_rate
      else
        Alcotest.(check bool) "hit rate in [0,1]" true
          (c.Market.cs_cache_hit_rate >= 0. && c.Market.cs_cache_hit_rate <= 1.))
    s.Market.str_classes

let suite =
  ( "cache",
    [
      quick "statement cache: deterministic LRU" test_stmt_lru;
      quick "statement cache: per-source invalidation is selective"
        test_stmt_selective_invalidation;
      quick "result cache: byte budget evicts, oversize skipped"
        test_result_byte_budget;
      quick "result cache: epoch change never serves stale"
        test_result_epoch_invalidation;
      quick "market: distinct queries make the cache a no-op"
        test_market_no_hit_neutrality;
      quick "market: result hits skip execution, oracle-checked"
        test_market_result_hits_oracle_checked;
      quick "market: statement hits re-admit the remembered plan"
        test_market_statement_hits;
      quick "market: catalog change cannot serve a stale answer"
        test_stale_hit_impossible;
      quick "market: shared placement beats client on repeats"
        test_shared_beats_client_on_repeats;
      quick "stream: tpch cache run identical across domains"
        test_stream_cache_deterministic_across_domains;
      quick "stream: per-class hit counters consistent, answers checked"
        test_stream_class_counters;
    ] )
