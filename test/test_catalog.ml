module Schema = Qt_catalog.Schema
module Fragment = Qt_catalog.Fragment
module Node = Qt_catalog.Node
module View = Qt_catalog.View
module Federation = Qt_catalog.Federation
module Interval = Qt_util.Interval

let quick = Helpers.quick

let customer =
  Schema.mk_relation ~partition_key:(Some "custid") ~cardinality:1000
    ~attrs:
      [
        Schema.mk_attr ~domain:(Schema.D_int (Interval.make 0 999)) ~distinct:1000
          "custid";
        Schema.mk_attr ~domain:(Schema.D_string 100) "custname";
      ]
    "customer"

let test_schema_lookup () =
  let s = Schema.create [ customer ] in
  Alcotest.(check bool) "found" true (Schema.find_relation s "customer" <> None);
  Alcotest.(check bool) "missing" true (Schema.find_relation s "nope" = None);
  Alcotest.(check bool) "attr found" true
    (Schema.attribute_of s ~rel:"customer" ~attr:"custid" <> None);
  Alcotest.(check bool) "key range" true
    (Interval.equal (Interval.make 0 999) (Schema.key_range customer))

let test_schema_validation () =
  let dup_attr =
    Schema.mk_relation ~cardinality:1
      ~attrs:[ Schema.mk_attr "x"; Schema.mk_attr "x" ]
      "bad"
  in
  (match Schema.create [ dup_attr ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "duplicate attribute accepted");
  (match Schema.create [ customer; customer ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "duplicate relation accepted");
  let bad_key =
    Schema.mk_relation ~partition_key:(Some "name") ~cardinality:1
      ~attrs:[ Schema.mk_attr ~domain:(Schema.D_string 5) "name" ]
      "bad2"
  in
  match Schema.create [ bad_key ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "string partition key accepted"

let test_fragment_restrict_rows () =
  let f = Fragment.make ~rel:"customer" ~range:(Interval.make 0 99) ~rows:200 in
  Alcotest.(check int) "whole" 200 (Fragment.restrict_rows f (Interval.make 0 99));
  Alcotest.(check int) "superset" 200 (Fragment.restrict_rows f Interval.full);
  Alcotest.(check int) "half" 100 (Fragment.restrict_rows f (Interval.make 0 49));
  Alcotest.(check int) "disjoint" 0 (Fragment.restrict_rows f (Interval.make 500 600));
  Alcotest.(check bool) "covers_whole false" false (Fragment.covers_whole customer f);
  let whole = Fragment.make ~rel:"customer" ~range:(Interval.make 0 999) ~rows:1000 in
  Alcotest.(check bool) "covers_whole true" true (Fragment.covers_whole customer whole)

let test_fragment_predicate () =
  let f = Fragment.make ~rel:"customer" ~range:(Interval.make 100 199) ~rows:100 in
  (match Fragment.predicate customer ~alias:"c" f with
  | Some (Qt_sql.Ast.Between (a, 100, 199)) ->
    Alcotest.(check string) "alias" "c" a.Qt_sql.Ast.rel;
    Alcotest.(check string) "attr" "custid" a.Qt_sql.Ast.name
  | _ -> Alcotest.fail "predicate shape");
  let whole = Fragment.make ~rel:"customer" ~range:Interval.full ~rows:1000 in
  Alcotest.(check bool) "no predicate for full copy" true
    (Fragment.predicate customer ~alias:"c" whole = None)

let test_node_and_federation () =
  let schema = Schema.create [ customer ] in
  let f0 = Fragment.make ~rel:"customer" ~range:(Interval.make 0 499) ~rows:500 in
  let f1 = Fragment.make ~rel:"customer" ~range:(Interval.make 500 999) ~rows:500 in
  let n0 = Node.make ~id:0 ~name:"n0" ~fragments:[ f0 ] () in
  let n1 = Node.make ~id:1 ~name:"n1" ~fragments:[ f1 ] () in
  let fed = Federation.create schema [ n0; n1 ] in
  Alcotest.(check int) "ids" 2 (List.length (Federation.node_ids fed));
  Alcotest.(check int) "holders" 2
    (List.length (Federation.nodes_with_relation fed "customer"));
  Alcotest.(check bool) "covered" true (Federation.relation_covered fed "customer");
  Alcotest.(check int) "total rows" 1000 (Federation.total_fragment_rows fed "customer");
  (* Remove a slice: coverage must fail. *)
  let partial = Federation.create schema [ n0 ] in
  Alcotest.(check bool) "uncovered" false
    (Federation.relation_covered partial "customer");
  (* Duplicate ids rejected. *)
  (match Federation.create schema [ n0; n0 ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "duplicate node ids accepted");
  (* Unknown relation rejected. *)
  let ghost =
    Node.make ~id:9 ~name:"ghost"
      ~fragments:[ Fragment.make ~rel:"nope" ~range:Interval.full ~rows:1 ]
      ()
  in
  match Federation.create schema [ ghost ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "unknown relation accepted"

let test_generator_covers () =
  (* Every generated federation must cover its relations, whatever the
     partition/replica mix. *)
  List.iter
    (fun (nodes, partitions, replicas) ->
      let fed = Helpers.telecom_federation ~nodes ~partitions ~replicas () in
      List.iter
        (fun (rel : Schema.relation) ->
          if not (Federation.relation_covered fed rel.rel_name) then
            Alcotest.failf "nodes=%d p=%d r=%d leaves %s uncovered" nodes partitions
              replicas rel.rel_name)
        (Schema.relations fed.Federation.schema))
    [ (4, 2, 1); (4, 4, 2); (10, 5, 3); (3, 8, 1); (16, 4, 4) ]

let test_generator_replicas_consistent () =
  let fed = Helpers.telecom_federation ~nodes:6 ~partitions:3 ~replicas:2 () in
  (* Each partition of customer must appear on exactly two nodes with the
     same range and row count. *)
  let frags =
    List.concat_map (fun (n : Node.t) -> Node.fragments_of n "customer")
      fed.Federation.nodes
  in
  let groups =
    Qt_util.Listx.group_by (fun (f : Fragment.t) -> f.range.Interval.lo) frags
  in
  Alcotest.(check int) "three partitions" 3 (List.length groups);
  List.iter
    (fun (_, copies) ->
      Alcotest.(check int) "two replicas" 2 (List.length copies);
      match copies with
      | [ a; b ] -> Alcotest.(check bool) "identical" true (Fragment.equal a b)
      | _ -> ())
    groups

let test_view_make () =
  let def = Helpers.parse "SELECT il.custid FROM invoiceline il" in
  let v = View.make ~name:"v1" ~definition:def ~rows:10 () in
  Alcotest.(check string) "name" "v1" v.View.view_name;
  match View.make ~name:"bad" ~definition:def ~rows:(-1) () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "negative view rows accepted"

let suite =
  ( "catalog",
    [
      quick "schema lookup" test_schema_lookup;
      quick "schema validation" test_schema_validation;
      quick "fragment restrict_rows" test_fragment_restrict_rows;
      quick "fragment predicate" test_fragment_predicate;
      quick "node and federation" test_node_and_federation;
      quick "generator covers" test_generator_covers;
      quick "generator replicas consistent" test_generator_replicas_consistent;
      quick "view make" test_view_make;
    ] )
