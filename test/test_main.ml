let () =
  Alcotest.run "qt"
    [
      Test_util.suite;
      Test_sql.suite;
      Test_catalog.suite;
      Test_stats.suite;
      Test_cost.suite;
      Test_optimizer.suite;
      Test_rewrite.suite;
      Test_views.suite;
      Test_trading.suite;
      Test_net.suite;
      Test_runtime.suite;
      Test_transport.suite;
      Test_obs.suite;
      Test_market.suite;
      Test_execsched.suite;
      Test_stream.suite;
      Test_exec.suite;
      Test_core.suite;
      Test_baseline.suite;
      Test_sim.suite;
      Test_parallel.suite;
      Test_extra.suite;
      Test_local_exec.suite;
      Test_errors.suite;
    ]
