(* Time-resolved telemetry: timeseries scraping, SLO burn-rate alerting,
   the flight recorder, OpenMetrics exposition, benchdiff rules, Chrome
   trace counter events, and the run_stream integration — determinism
   across pool sizes and byte-identity when telemetry is off. *)

module Market = Qt_market.Market
module Admission = Qt_market.Admission
module Sla = Qt_stream.Sla
module Arrivals = Qt_stream.Arrivals
module Metrics = Qt_obs.Metrics
module Timeseries = Qt_obs.Timeseries
module Slo = Qt_obs.Slo
module Flight_recorder = Qt_obs.Flight_recorder
module Openmetrics = Qt_obs.Openmetrics
module Benchdiff = Qt_obs.Benchdiff
module Json = Qt_util.Json_min
module Pool = Qt_optimizer.Pool
open Helpers

let params = Qt_cost.Params.default

(* ------------------------------------------------------------------ *)
(* Timeseries                                                           *)
(* ------------------------------------------------------------------ *)

let test_timeseries_scrape () =
  let m = Metrics.create () in
  let c = Metrics.counter m "reqs" in
  let g = Metrics.gauge m "depth" in
  let h = Metrics.histogram m "lat" in
  let ts = Timeseries.create ~interval:0.5 m in
  Alcotest.(check (float 1e-9)) "first tick at interval" 0.5
    (Timeseries.next_tick ts);
  Metrics.incr ~by:10 c;
  Metrics.set g 3.;
  Metrics.observe h 1.0;
  Timeseries.scrape ts ~now:0.5;
  Metrics.incr ~by:2 c;
  Timeseries.scrape ts ~now:1.0;
  Alcotest.(check (float 1e-9)) "next tick advances" 1.5
    (Timeseries.next_tick ts);
  Alcotest.(check int) "two ticks" 2 (Timeseries.ticks ts);
  (* Counter rate is the per-window delta over the interval. *)
  (match Timeseries.last ts "reqs.rate" with
  | Some r -> Alcotest.(check (float 1e-9)) "rate = delta/interval" 4. r
  | None -> Alcotest.fail "no reqs.rate series");
  Alcotest.(check (float 1e-9)) "window delta" 2.
    (Timeseries.window_delta ts "reqs");
  (match Timeseries.last ts "depth" with
  | Some v -> Alcotest.(check (float 1e-9)) "gauge sampled" 3. v
  | None -> Alcotest.fail "no gauge series");
  (* The histogram observation landed in window 1; window 2 is empty, so
     its quantile series are not re-emitted. *)
  (match Timeseries.last ts "lat.count" with
  | Some n -> Alcotest.(check (float 1e-9)) "empty window count" 0. n
  | None -> Alcotest.fail "no lat.count series");
  Alcotest.(check bool) "points accumulated" true
    (Timeseries.point_count ts > 0);
  Alcotest.(check bool) "interval must be positive" true
    (try
       ignore (Timeseries.create ~interval:0. m);
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* SLO burn-rate engine                                                 *)
(* ------------------------------------------------------------------ *)

let test_slo_parse () =
  (match Slo.parse "interactive:p95<5:budget=0.01" with
  | Ok r ->
    Alcotest.(check string) "subject" "interactive" r.Slo.r_subject;
    Alcotest.(check bool) "metric" true (r.Slo.r_metric = Slo.P95);
    Alcotest.(check bool) "cmp" true (r.Slo.r_cmp = Slo.Lt);
    Alcotest.(check (float 1e-9)) "threshold" 5. r.Slo.r_threshold;
    Alcotest.(check (float 1e-9)) "budget" 0.01 r.Slo.r_budget;
    Alcotest.(check int) "default fast" 5 r.Slo.r_fast_windows;
    Alcotest.(check int) "default slow" 30 r.Slo.r_slow_windows
  | Error msg -> Alcotest.fail msg);
  (match Slo.parse "all:goodput>0.5:budget=0.1:fast=3:slow=9:factor=2" with
  | Ok r ->
    Alcotest.(check bool) "goodput metric" true (r.Slo.r_metric = Slo.Goodput);
    Alcotest.(check int) "fast override" 3 r.Slo.r_fast_windows;
    Alcotest.(check (float 1e-9)) "factor override" 2. r.Slo.r_factor
  | Error msg -> Alcotest.fail msg);
  List.iter
    (fun bad ->
      match Slo.parse bad with
      | Ok _ -> Alcotest.fail (Printf.sprintf "'%s' should not parse" bad)
      | Error _ -> ())
    [
      "interactive:p95<5";
      "interactive:p42<5:budget=0.01";
      "interactive:p95<5:budget=2";
      "interactive:p95<5:budget=0.01:fast=9:slow=3";
      "interactive:p95~5:budget=0.01";
    ]

let test_slo_alert_timing () =
  (* Constant full-budget burn: with fast=5 windows of warm-up the alert
     must fire at exactly the fifth observation, t = 5.0. *)
  let rule =
    match Slo.parse "interactive:p95<5:budget=0.01" with
    | Ok r -> r
    | Error msg -> failwith msg
  in
  let eng = Slo.create [ rule ] in
  let fired = ref [] in
  for i = 1 to 10 do
    let t = float_of_int i in
    let alerts = Slo.observe eng ~now:t ~error_rate:(fun _ -> 1.0) in
    List.iter (fun (al : Slo.alert) -> fired := al :: !fired) alerts
  done;
  (match List.rev !fired with
  | [ al ] ->
    Alcotest.(check (float 1e-9)) "fires exactly at tick fast_windows" 5.
      al.Slo.al_time;
    Alcotest.(check bool) "burn rates above factor" true
      (al.Slo.al_burn_fast >= rule.Slo.r_factor
      && al.Slo.al_burn_slow >= rule.Slo.r_factor)
  | alerts ->
    Alcotest.fail
      (Printf.sprintf "expected exactly one alert, got %d" (List.length alerts)));
  (* Recovery re-arms: enough clean windows drop the fast burn below the
     factor, and a fresh burn fires a second alert. *)
  let eng = Slo.create [ rule ] in
  let feed errs =
    List.concat_map
      (fun (t, e) -> Slo.observe eng ~now:t ~error_rate:(fun _ -> e))
      errs
  in
  let first =
    feed (List.init 6 (fun i -> (float_of_int (i + 1), 1.0)))
  in
  Alcotest.(check int) "first burn alerts once" 1 (List.length first);
  let clean =
    feed (List.init 6 (fun i -> (float_of_int (i + 7), 0.0)))
  in
  Alcotest.(check int) "clean windows re-arm silently" 0 (List.length clean);
  let second =
    feed (List.init 6 (fun i -> (float_of_int (i + 13), 1.0)))
  in
  Alcotest.(check int) "re-armed rule fires again" 1 (List.length second)

let test_slo_severity_and_dedup () =
  let rule spec =
    match Slo.parse spec with Ok r -> r | Error msg -> failwith msg
  in
  (* Severity is derived from the fast burn: >= 2x the firing factor
     pages critical, anything between factor and 2x stays warn. *)
  let severity_of err =
    let eng = Slo.create [ rule "all:goodput>0.5:budget=0.1:fast=2:slow=2:factor=2" ] in
    let fired = ref [] in
    for i = 1 to 2 do
      fired :=
        !fired
        @ Slo.observe eng ~now:(float_of_int i) ~error_rate:(fun _ -> err)
    done;
    match !fired with
    | [ al ] -> al.Slo.al_severity
    | alerts ->
      failwith (Printf.sprintf "expected one alert, got %d" (List.length alerts))
  in
  Alcotest.(check bool) "burn 3x factor is warn" true
    (severity_of 0.3 = Slo.Warn);
  Alcotest.(check bool) "burn >= 2x factor is critical" true
    (severity_of 0.5 = Slo.Critical);
  (* Dedup: a re-fire within the window is folded into the next emitted
     alert; the firing episode still happens (surge coupling sees it). *)
  let eng =
    Slo.create
      [ rule "all:goodput>0.5:budget=0.1:fast=2:slow=2:factor=2:dedup=10" ]
  in
  let tick = ref 0 in
  let feed errs =
    List.concat_map
      (fun e ->
        incr tick;
        Slo.observe eng ~now:(float_of_int !tick) ~error_rate:(fun _ -> e))
      errs
  in
  let burst = [ 1.0; 1.0 ] and calm = [ 0.0; 0.0 ] in
  Alcotest.(check int) "first burst pages" 1 (List.length (feed burst));
  ignore (feed calm);
  let refire = feed burst in
  Alcotest.(check int) "re-fire inside the window is folded" 0
    (List.length refire);
  Alcotest.(check bool) "the folded episode still sets firing" true
    (Slo.firing eng);
  Alcotest.(check int) "suppression counted" 1 (Slo.suppressed eng);
  ignore (feed (List.concat [ calm; calm; calm ]));
  (match feed burst with
  | [ al ] ->
    Alcotest.(check int) "late alert carries the folded count" 1
      al.Slo.al_suppressed
  | alerts ->
    Alcotest.failf "expected one alert past the window, got %d"
      (List.length alerts));
  Alcotest.(check int) "emitted alerts exclude the folded fire" 2
    (List.length (Slo.alerts eng))

(* ------------------------------------------------------------------ *)
(* Flight recorder                                                      *)
(* ------------------------------------------------------------------ *)

let test_flight_recorder_ring () =
  let fr = Flight_recorder.create ~capacity:3 in
  for i = 1 to 5 do
    Flight_recorder.record fr ~time:(float_of_int i) ~node:0 ~kind:"k"
      ~detail:(Printf.sprintf "e%d" i)
  done;
  Flight_recorder.record fr ~time:6. ~node:1 ~kind:"k" ~detail:"other";
  let recent = Flight_recorder.recent fr ~node:0 in
  Alcotest.(check (list string)) "oldest evicted, oldest-first order"
    [ "e3"; "e4"; "e5" ]
    (List.map (fun (e : Flight_recorder.entry) -> e.Flight_recorder.e_detail) recent);
  Alcotest.(check (list int)) "nodes ascending" [ 0; 1 ]
    (Flight_recorder.nodes fr);
  let b = Flight_recorder.bundle fr ~time:7. ~reason:"test" ~metrics:"{}" in
  Alcotest.(check int) "bundle merges all nodes" 4
    (List.length b.Flight_recorder.b_entries);
  let ordered =
    List.for_all2
      (fun (a : Flight_recorder.entry) (b : Flight_recorder.entry) ->
        a.Flight_recorder.e_time <= b.Flight_recorder.e_time)
      (List.filteri (fun i _ -> i < 3) b.Flight_recorder.b_entries)
      (List.tl b.Flight_recorder.b_entries)
  in
  Alcotest.(check bool) "bundle time-ordered" true ordered;
  Alcotest.(check bool) "capacity must be positive" true
    (try
       ignore (Flight_recorder.create ~capacity:0);
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* OpenMetrics                                                          *)
(* ------------------------------------------------------------------ *)

let test_openmetrics_roundtrip () =
  let m = Metrics.create () in
  Metrics.incr ~by:7 (Metrics.counter m "stream.arrivals");
  Metrics.set (Metrics.gauge m "seller.0.occupancy") 0.5;
  let h = Metrics.histogram m "stream.latency.all" in
  Metrics.observe h 1.0;
  Metrics.observe h 2.0;
  let text = Openmetrics.render m in
  (match Openmetrics.validate text with
  | Ok () -> ()
  | Error msg -> Alcotest.fail ("render should validate: " ^ msg));
  Alcotest.(check bool) "counter rendered with _total suffix" true
    (let rec has = function
       | [] -> false
       | l :: rest -> l = "stream_arrivals_total 7" || has rest
     in
     has (String.split_on_char '\n' text));
  (* Corruptions the validator must catch. *)
  let truncated =
    String.sub text 0 (String.length text - String.length "# EOF\n")
  in
  (match Openmetrics.validate truncated with
  | Ok () -> Alcotest.fail "missing # EOF should fail"
  | Error _ -> ());
  (match Openmetrics.validate ("bad name! 1\n" ^ text) with
  | Ok () -> Alcotest.fail "bad sample line should fail"
  | Error _ -> ());
  match Openmetrics.validate (text ^ "trailing 1\n") with
  | Ok () -> Alcotest.fail "content after # EOF should fail"
  | Error _ -> ()

(* ------------------------------------------------------------------ *)
(* Benchdiff                                                            *)
(* ------------------------------------------------------------------ *)

let test_benchdiff_rules () =
  (match Benchdiff.parse_rule "goodput>=0.05" with
  | Ok r ->
    Alcotest.(check bool) "min ratio" true (r.Benchdiff.bd_cmp = Benchdiff.Min_ratio);
    Alcotest.(check (float 1e-9)) "tolerance" 0.05 r.Benchdiff.bd_tol
  | Error msg -> Alcotest.fail msg);
  (match Benchdiff.parse_rule "identical==" with
  | Ok r -> Alcotest.(check bool) "exact" true (r.Benchdiff.bd_cmp = Benchdiff.Exact)
  | Error msg -> Alcotest.fail msg);
  (match Benchdiff.parse_rule "nonsense" with
  | Ok _ -> Alcotest.fail "bad rule should not parse"
  | Error _ -> ());
  match Benchdiff.parse_rules "# comment\n\ngoodput>=0.1\nwall<=0.5\nok==\n" with
  | Ok rules -> Alcotest.(check int) "three rules" 3 (List.length rules)
  | Error msg -> Alcotest.fail msg

let test_benchdiff_compare () =
  let rules =
    match
      Benchdiff.parse_rules "goodput>=0.1\nwall<=0.2\nidentical==\nmissing>=0.1\n"
    with
    | Ok r -> r
    | Error msg -> failwith msg
  in
  let parse s = Json.parse s in
  let baseline =
    parse
      "{\"goodput\":0.8,\"wall\":10.0,\"identical\":true,\"missing\":1.0,\"extra\":5}"
  in
  (* Within tolerance on every ruled key: no failures; unruled drift and
     the dropped ruled key are reported. *)
  let ok = parse "{\"goodput\":0.75,\"wall\":11.0,\"identical\":true,\"extra\":6}" in
  let r = Benchdiff.compare_snapshots ~rules ~baseline ~current:ok in
  Alcotest.(check int) "one failure: ruled key missing from current" 1
    (List.length r.Benchdiff.failures);
  Alcotest.(check bool) "unruled drift noted" true
    (List.exists
       (fun n -> String.length n >= 5 && String.sub n 0 5 = "extra")
       r.Benchdiff.notes);
  (* Regressions on each rule kind. *)
  let bad =
    parse
      "{\"goodput\":0.5,\"wall\":20.0,\"identical\":false,\"missing\":1.0,\"extra\":5}"
  in
  let r = Benchdiff.compare_snapshots ~rules ~baseline ~current:bad in
  Alcotest.(check int) "goodput drop + wall rise + exact mismatch" 3
    (List.length r.Benchdiff.failures)

(* ------------------------------------------------------------------ *)
(* Chrome trace counter events                                          *)
(* ------------------------------------------------------------------ *)

let test_trace_counters () =
  let obs = Qt_obs.Obs.create () in
  ignore (Qt_obs.Obs.emit obs ~cat:"test" ~name:"work" ~track:0 ~t0:0. ~t1:1. ());
  let counters =
    [ ("stream.goodput", [ (1.0, 0.9); (2.0, 0.5) ]);
      ("stream.occupancy", [ (1.0, 0.2) ]) ]
  in
  let json = Qt_obs.Chrome_trace.to_json ~counters obs in
  (match Qt_obs.Chrome_trace.validate json with
  | Ok () -> ()
  | Error msg -> Alcotest.fail ("counter trace should validate: " ^ msg));
  Alcotest.(check bool) "counter events present" true
    (let rec contains i =
       i + 8 <= String.length json
       && (String.sub json i 8 = "\"ph\":\"C\"" || contains (i + 1))
     in
     contains 0);
  (* Without counters the trace is unchanged and still valid. *)
  (match Qt_obs.Chrome_trace.validate (Qt_obs.Chrome_trace.to_json obs) with
  | Ok () -> ()
  | Error msg -> Alcotest.fail msg);
  (* A counter event without a numeric arg is rejected. *)
  let bad =
    "{\"traceEvents\":[{\"name\":\"c\",\"cat\":\"t\",\"ph\":\"C\",\"ts\":1.0,\
     \"pid\":1,\"tid\":1,\"args\":{}}],\"displayTimeUnit\":\"ms\"}"
  in
  match Qt_obs.Chrome_trace.validate bad with
  | Ok () -> Alcotest.fail "counter without numeric args should fail"
  | Error _ -> ()

(* ------------------------------------------------------------------ *)
(* run_stream integration                                               *)
(* ------------------------------------------------------------------ *)

let stream_federation () = chain_federation ~nodes:4 ~relations:2 ~partitions:2 ()

let stream_templates () =
  Array.of_list
    (Qt_sim.Workload.random_chain_queries ~seed:11 ~count:4 ~relations:2
       ~max_joins:1)

let telemetry_scfg ?pool ?(latency_domain = 1000.) ?(slo = []) ?telemetry () =
  let d = Market.default_stream_config params in
  let telemetry =
    match telemetry with
    | Some t -> t
    | None ->
      Some { Market.default_telemetry with Market.slo_rules = slo }
  in
  {
    d with
    Market.base =
      {
        d.Market.base with
        Market.admission =
          {
            d.Market.base.Market.admission with
            Admission.slots = 1;
            queue_limit = 2;
          };
        max_admission_retries = 4;
        pool;
      };
    telemetry;
    latency_domain;
  }

let run_overload ?pool ?latency_domain ?telemetry ?(slo = []) ?(count = 400) () =
  let federation = stream_federation () in
  let templates = stream_templates () in
  let arrivals =
    Arrivals.generate ~seed:13
      ~process:(Arrivals.Poisson { rate = 20. })
      ~horizon:(Arrivals.Count count) ~templates:(Array.length templates)
      ~theta:0.9 ~mix:Sla.default_mix
  in
  Market.run_stream
    (telemetry_scfg ?pool ?latency_domain ?telemetry ~slo ())
    federation ~templates arrivals

let overload_rule () =
  match Slo.parse "interactive:p95<0.05:budget=0.01" with
  | Ok r -> r
  | Error msg -> failwith msg

let test_stream_alert_fires () =
  let s = run_overload ~slo:[ overload_rule () ] () in
  let tel = Option.get s.Market.str_telemetry in
  Alcotest.(check bool) "scrape ticks taken" true (tel.Market.tl_ticks > 0);
  Alcotest.(check bool) "series points scraped" true
    (tel.Market.tl_points <> []);
  (match tel.Market.tl_alerts with
  | ((al : Slo.alert), bundle) :: _ ->
    Alcotest.(check bool) "alert fires before end of run" true
      (al.Slo.al_time < s.Market.str_makespan);
    Alcotest.(check bool) "bundle carries recent activity" true
      (bundle.Flight_recorder.b_entries <> []);
    Alcotest.(check bool) "bundle carries a metrics snapshot" true
      (bundle.Flight_recorder.b_metrics <> "")
  | [] -> Alcotest.fail "overload run should fire the p95 alert");
  (* The series dump carries points, the alert and its bundle. *)
  let jsonl = Market.telemetry_jsonl tel in
  Alcotest.(check bool) "jsonl mentions the alert" true
    (let needle = "\"alert\"" in
     let rec contains i =
       i + String.length needle <= String.length jsonl
       && (String.sub jsonl i (String.length needle) = needle || contains (i + 1))
     in
     contains 0)

let test_stream_telemetry_deterministic_across_pools () =
  let a = run_overload ~slo:[ overload_rule () ] () in
  let p = Pool.create ~domains:4 in
  let b =
    Fun.protect
      ~finally:(fun () -> Pool.shutdown p)
      (fun () -> run_overload ~pool:p ~slo:[ overload_rule () ] ())
  in
  Alcotest.(check string) "stats JSON byte-identical at domains=4"
    (Market.stream_to_json a) (Market.stream_to_json b);
  Alcotest.(check string) "series JSONL byte-identical at domains=4"
    (Market.telemetry_jsonl (Option.get a.Market.str_telemetry))
    (Market.telemetry_jsonl (Option.get b.Market.str_telemetry))

(* Splice the [,"telemetry":{...}] segment out of a telemetry-on JSON
   rendering; brace counting is safe because no string in the object
   nests braces. *)
let splice_telemetry json =
  let needle = ",\"telemetry\":" in
  let nlen = String.length needle in
  let rec find i =
    if i + nlen > String.length json then None
    else if String.sub json i nlen = needle then Some i
    else find (i + 1)
  in
  match find 0 with
  | None -> json
  | Some i ->
    let start = i + nlen in
    let rec close j depth =
      match json.[j] with
      | '{' -> close (j + 1) (depth + 1)
      | '}' -> if depth = 1 then j else close (j + 1) (depth - 1)
      | _ -> close (j + 1) depth
    in
    let last = close start 0 in
    String.sub json 0 i ^ String.sub json (last + 1) (String.length json - last - 1)

let test_stream_telemetry_off_identity () =
  let off = run_overload ~telemetry:None () in
  let on = run_overload ~slo:[ overload_rule () ] () in
  let on_json = Market.stream_to_json on in
  Alcotest.(check bool) "telemetry-on output carries the block" true
    (on_json <> splice_telemetry on_json);
  Alcotest.(check string)
    "splicing the telemetry block yields the telemetry-off bytes"
    (Market.stream_to_json off) (splice_telemetry on_json)

let test_latency_domain () =
  (* The 1000-second default is the historical fixed domain: passing it
     explicitly must not change a byte. *)
  let a = run_overload ~telemetry:None ~count:120 () in
  let b = run_overload ~telemetry:None ~latency_domain:1000. ~count:120 () in
  Alcotest.(check string) "explicit default domain is byte-identical"
    (Market.stream_to_json a) (Market.stream_to_json b);
  (* A wider domain coarsens quantile resolution but cannot change the
     counting stats. *)
  let c = run_overload ~telemetry:None ~latency_domain:5000. ~count:120 () in
  Alcotest.(check int) "arrivals unchanged" a.Market.str_arrivals c.Market.str_arrivals;
  Alcotest.(check int) "hits unchanged" a.Market.str_hits c.Market.str_hits;
  Alcotest.(check int) "completions unchanged" a.Market.str_completed
    c.Market.str_completed

let suite =
  ( "telemetry",
    [
      quick "timeseries: rates, gauges, windows, tick cadence"
        test_timeseries_scrape;
      quick "slo: rule grammar" test_slo_parse;
      quick "slo: burn-rate alert timing and re-arm" test_slo_alert_timing;
      quick "slo: severity tiers and dedup folding" test_slo_severity_and_dedup;
      quick "flight recorder: ring eviction and bundles"
        test_flight_recorder_ring;
      quick "openmetrics: render validates, corruptions rejected"
        test_openmetrics_roundtrip;
      quick "benchdiff: rule grammar" test_benchdiff_rules;
      quick "benchdiff: tolerance gating" test_benchdiff_compare;
      quick "chrome trace: counter events" test_trace_counters;
      quick "run_stream: overload fires the burn-rate alert"
        test_stream_alert_fires;
      quick "run_stream: telemetry byte-identical across pool sizes"
        test_stream_telemetry_deterministic_across_pools;
      quick "run_stream: telemetry off leaves output byte-identical"
        test_stream_telemetry_off_identity;
      quick "run_stream: latency histogram domain" test_latency_domain;
    ] )
