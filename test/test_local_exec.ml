(* Integration battery: plans produced by the LOCAL System-R optimizer are
   executed by the engine and compared against the naive oracle, for a
   spectrum of SQL shapes.  This isolates optimizer+engine correctness
   from the trading machinery (which test_core covers). *)

module Ast = Qt_sql.Ast
module Schema = Qt_catalog.Schema
module Estimate = Qt_stats.Estimate
module Plan = Qt_optimizer.Plan
module Dp = Qt_optimizer.Dp
module Interval = Qt_util.Interval

let quick = Helpers.quick
let params = Qt_cost.Params.default

let federation = Helpers.telecom_federation ~nodes:2 ~partitions:1 ()
let schema = federation.Qt_catalog.Federation.schema
let store = Qt_exec.Store.generate ~seed:99 federation

(* Base access paths: whole-relation scans (node 0 holds everything when
   partitions = 1... node 0 holds partition 1 of 1 = all rows). *)
let base (q : Ast.t) alias =
  match Qt_sql.Analysis.relation_of_alias q alias with
  | None -> None
  | Some rel_name ->
    let rel = Schema.find_relation_exn schema rel_name in
    Some
      (Plan.Scan
         {
           Plan.alias;
           rel = rel_name;
           range = Interval.full;
           scan_rows = float_of_int rel.cardinality;
           row_bytes = rel.row_bytes;
           node = 0;
         })

let optimize_and_execute sql =
  let q = Qt_sql.Parser.parse sql in
  let env = Estimate.env_of_schema schema q in
  match (Dp.optimize ~params ~env ~base:(base q) q).Dp.best with
  | None -> Alcotest.failf "no plan for %s" sql
  | Some best ->
    let result = Qt_exec.Engine.run store federation best.Dp.plan in
    let oracle = Qt_exec.Naive.run_global store q in
    if not (Helpers.tables_equal_po result oracle) then
      Alcotest.failf "optimized execution diverges for %s@.plan:@.%a" sql Plan.pp
        best.Dp.plan

let battery =
  [
    (* projections and selections *)
    "SELECT c.custid FROM customer c";
    "SELECT c.custid, c.custname, c.office FROM customer c";
    "SELECT c.custid FROM customer c WHERE c.custid = 17";
    "SELECT c.custid FROM customer c WHERE c.custid <> 17";
    "SELECT c.custid FROM customer c WHERE c.custid BETWEEN 100 AND 250";
    "SELECT c.custid FROM customer c WHERE c.custid >= 700 AND c.office < 50";
    "SELECT c.custid FROM customer c WHERE c.custid BETWEEN 100 AND 100 AND c.custid = 200";
    (* joins *)
    "SELECT c.custname, il.charge FROM customer c, invoiceline il \
     WHERE c.custid = il.custid";
    "SELECT c.custname FROM customer c, invoiceline il \
     WHERE c.custid = il.custid AND il.charge > 900";
    "SELECT c.office, il.invid FROM customer c, invoiceline il \
     WHERE c.custid = il.custid AND c.custid BETWEEN 0 AND 99 AND c.office > 20";
    (* self join *)
    "SELECT a.custid FROM customer a, customer b \
     WHERE a.custid = b.custid AND b.office = 7";
    (* aggregation *)
    "SELECT COUNT(*) FROM customer c";
    "SELECT SUM(il.charge), MIN(il.charge), MAX(il.charge), AVG(il.charge) \
     FROM invoiceline il";
    "SELECT c.office, COUNT(*) FROM customer c GROUP BY c.office";
    "SELECT c.office, SUM(il.charge) FROM customer c, invoiceline il \
     WHERE c.custid = il.custid GROUP BY c.office";
    "SELECT il.custid, il.linenum, COUNT(*) FROM invoiceline il \
     GROUP BY il.custid, il.linenum";
    (* distinct and ordering *)
    "SELECT DISTINCT c.office FROM customer c";
    "SELECT DISTINCT c.office, c.custname FROM customer c WHERE c.custid < 50";
    "SELECT c.custid FROM customer c WHERE c.custid BETWEEN 0 AND 80 \
     ORDER BY c.custid";
    "SELECT c.office, COUNT(*) FROM customer c GROUP BY c.office ORDER BY c.office";
    "SELECT c.custid, c.office FROM customer c WHERE c.custid < 60 \
     ORDER BY c.office DESC";
    (* aggregates over empty inputs *)
    "SELECT COUNT(*) FROM customer c WHERE c.custid = -5";
    "SELECT SUM(il.charge) FROM invoiceline il WHERE il.charge > 100000";
  ]

let test_battery () = List.iter optimize_and_execute battery

(* Normalization properties over the random query generator shared with
   the parser roundtrip. *)
let prop_normalize_idempotent =
  QCheck2.Test.make ~name:"normalize is idempotent" ~count:200 Test_sql.query_gen
    (fun q ->
      let n = Qt_sql.Analysis.normalize q in
      Ast.equal n (Qt_sql.Analysis.normalize n))

let prop_signature_order_insensitive =
  QCheck2.Test.make ~name:"signature ignores conjunct order" ~count:200
    Test_sql.query_gen (fun q ->
      let shuffled = { q with Ast.where = List.rev q.Ast.where } in
      Qt_sql.Analysis.signature q = Qt_sql.Analysis.signature shuffled)

let suite =
  ( "local-exec",
    [
      quick "optimizer/engine battery" test_battery;
      QCheck_alcotest.to_alcotest prop_normalize_idempotent;
      QCheck_alcotest.to_alcotest prop_signature_order_insensitive;
    ] )
