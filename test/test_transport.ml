(* Transport abstraction and signature-keyed caching: lockstep/DES
   parity, seller bid-cache correctness and invalidation, in-round
   request dedup, the standing-offer re-broadcast memo, and per-phase
   accounting. *)

module Trader = Qt_core.Trader
module Seller = Qt_core.Seller
module Offer = Qt_core.Offer
module Analysis = Qt_sql.Analysis
module Node = Qt_catalog.Node
module Cost = Qt_cost.Cost
open Helpers

let params = Qt_cost.Params.default
let revenue = revenue_query ()

let des_transport ?(seed = 1) (federation : Qt_catalog.Federation.t) =
  let runtime =
    Qt_runtime.Runtime.create ~faults:Qt_runtime.Fault_plan.none ~params ~seed ()
  in
  Qt_runtime.Transport_des.create runtime ~buyer:Trader.buyer_id
    ~nodes:(List.map (fun (n : Node.t) -> n.Node.node_id) federation.nodes)

let ok = function
  | Ok o -> o
  | Error e -> Alcotest.failf "optimize failed: %s" e

let purchased_sellers (o : Trader.outcome) =
  List.sort_uniq compare
    (List.map (fun (o : Offer.t) -> o.Offer.seller) o.Trader.purchased)

(* The same trade through both transports: the loop is shared, only the
   execution model differs, and with no faults the models must agree on
   everything the buyer decides (the DES clock model may differ). *)
let test_lockstep_des_parity () =
  let federation = telecom_federation ~nodes:8 ~partitions:4 ~replicas:2 () in
  let config = Trader.default_config params in
  let lock = ok (Trader.optimize config federation revenue) in
  let des =
    ok
      (Trader.optimize ~transport:(des_transport federation) config federation
         revenue)
  in
  Alcotest.(check (float 1e-9))
    "plan cost" lock.Trader.stats.plan_cost des.Trader.stats.plan_cost;
  Alcotest.(check int)
    "iterations" lock.Trader.stats.iterations des.Trader.stats.iterations;
  Alcotest.(check int)
    "queries asked" lock.Trader.stats.queries_asked des.Trader.stats.queries_asked;
  Alcotest.(check int)
    "offers received" lock.Trader.stats.offers_received
    des.Trader.stats.offers_received;
  Alcotest.(check (list int))
    "purchased sellers" (purchased_sellers lock) (purchased_sellers des)

let offer_key (o : Offer.t) =
  Printf.sprintf "%d|%s|%.9f|%.9f" o.Offer.seller
    (Analysis.Sig.to_string o.Offer.query_sig)
    o.quoted o.true_cost

(* A cached respond must replay byte-identical offers and charge (almost)
   no pricing time for a fully warm batch. *)
let test_bid_cache_replays_offers () =
  let federation = telecom_federation () in
  let schema = federation.Qt_catalog.Federation.schema in
  let node = List.hd federation.Qt_catalog.Federation.nodes in
  let config = Seller.default_config params in
  let cache = Seller.cache_create () in
  let cold = Seller.respond ~cache config schema node ~requests:[ (revenue, 0.) ] in
  let warm = Seller.respond ~cache config schema node ~requests:[ (revenue, 0.) ] in
  Alcotest.(check bool) "some offers" true (cold.Seller.offers <> []);
  Alcotest.(check (list string))
    "identical offers"
    (List.map offer_key cold.Seller.offers)
    (List.map offer_key warm.Seller.offers);
  let s = Seller.cache_stats cache in
  Alcotest.(check int) "one hit" 1 s.Seller.hits;
  Alcotest.(check int) "one miss" 1 s.Seller.misses;
  Alcotest.(check bool)
    "warm batch cheaper than cold"
    true
    (warm.Seller.processing_time < cold.Seller.processing_time)

(* Changing what was priced under — the seller's load or its catalog —
   must invalidate the entry, never replay it. *)
let test_bid_cache_invalidation () =
  let federation = telecom_federation () in
  let schema = federation.Qt_catalog.Federation.schema in
  let node = List.hd federation.Qt_catalog.Federation.nodes in
  let config = Seller.default_config params in
  let cache = Seller.cache_create () in
  ignore (Seller.respond ~cache config schema node ~requests:[ (revenue, 0.) ]);
  (* Seller got busy: the cached quote is stale. *)
  ignore
    (Seller.respond ~cache { config with Seller.load = 0.7 } schema node
       ~requests:[ (revenue, 0.) ]);
  let s = Seller.cache_stats cache in
  Alcotest.(check int) "load change invalidates" 1 s.Seller.invalidations;
  Alcotest.(check int) "no hit" 0 s.Seller.hits;
  (* Catalog change (a faster machine) fingerprints differently. *)
  ignore
    (Seller.respond ~cache { config with Seller.load = 0.7 } schema
       { node with Node.cpu_factor = node.Node.cpu_factor *. 2. }
       ~requests:[ (revenue, 0.) ]);
  let s = Seller.cache_stats cache in
  Alcotest.(check int) "catalog change invalidates" 2 s.Seller.invalidations;
  Alcotest.(check int) "still no hit" 0 s.Seller.hits

(* A trade served from a warm shared pool must reproduce the cold trade
   exactly — the cache may only change who does the arithmetic. *)
let test_warm_trade_identical () =
  let federation = telecom_federation () in
  let config = Trader.default_config params in
  let caches = Seller.pool_create () in
  let cold = ok (Trader.optimize ~caches config federation revenue) in
  let after_cold = Seller.pool_stats caches in
  let warm = ok (Trader.optimize ~caches config federation revenue) in
  let after_warm = Seller.pool_stats caches in
  Alcotest.(check int) "cold trade all misses" 0 after_cold.Seller.hits;
  Alcotest.(check bool)
    "warm trade hits" true
    (after_warm.Seller.hits > after_cold.Seller.hits);
  Alcotest.(check (float 1e-9))
    "same plan cost" cold.Trader.stats.plan_cost warm.Trader.stats.plan_cost;
  Alcotest.(check int)
    "same messages" cold.Trader.stats.messages warm.Trader.stats.messages;
  Alcotest.(check int)
    "same iterations" cold.Trader.stats.iterations warm.Trader.stats.iterations;
  Alcotest.(check bool)
    "warm pricing cheaper" true
    (warm.Trader.phases.pricing.Trader.sim
    < cold.Trader.phases.pricing.Trader.sim)

(* Asking the same query twice in one RFB round must broadcast it once. *)
let test_request_dedup () =
  let federation = telecom_federation () in
  let config = Trader.default_config params in
  let once = ok (Trader.optimize ~requests:[ revenue ] config federation revenue) in
  let twice =
    ok (Trader.optimize ~requests:[ revenue; revenue ] config federation revenue)
  in
  Alcotest.(check int)
    "one dedup" 1 twice.Trader.phases.requests_deduped;
  Alcotest.(check int)
    "same queries asked" once.Trader.stats.queries_asked
    twice.Trader.stats.queries_asked;
  Alcotest.(check int)
    "same messages" once.Trader.stats.messages twice.Trader.stats.messages;
  Alcotest.(check (float 1e-9))
    "same plan cost" once.Trader.stats.plan_cost twice.Trader.stats.plan_cost

(* Re-trading a query whose standing contracts already answer it must not
   re-broadcast: the memo skips the RFB and plans from the pool. *)
let test_standing_offer_memo () =
  let federation = telecom_federation ~nodes:1 ~partitions:1 () in
  let config = Trader.default_config params in
  let first = ok (Trader.optimize config federation revenue) in
  Alcotest.(check bool) "bought something" true (first.Trader.purchased <> []);
  let warm =
    ok
      (Trader.optimize ~standing:first.Trader.purchased config federation revenue)
  in
  Alcotest.(check bool)
    "re-broadcast skipped" true
    (warm.Trader.phases.rebroadcasts_skipped >= 1);
  Alcotest.(check int) "no RFB messages" 0 warm.Trader.stats.messages;
  Alcotest.(check (float 1e-9))
    "same plan cost" first.Trader.stats.plan_cost warm.Trader.stats.plan_cost

(* The phase split must account for the whole trade: message counts and
   simulated time partition the totals. *)
let test_phase_accounting () =
  let federation = telecom_federation () in
  let config = Trader.default_config params in
  let o = ok (Trader.optimize config federation revenue) in
  let ph = o.Trader.phases in
  let msg (p : Trader.phase) = p.Trader.messages in
  let sim (p : Trader.phase) = p.Trader.sim in
  Alcotest.(check int)
    "messages partition"
    o.Trader.stats.messages
    (msg ph.rfb + msg ph.pricing + msg ph.negotiation + msg ph.plan_gen);
  Alcotest.(check (float 1e-6))
    "sim time partitions"
    o.Trader.stats.sim_time
    (sim ph.rfb +. sim ph.pricing +. sim ph.negotiation +. sim ph.plan_gen);
  Alcotest.(check bool) "pricing happened" true (ph.pricing.Trader.sim > 0.);
  Alcotest.(check bool)
    "pricing misses counted" true (ph.pricing.Trader.cache_misses > 0);
  Alcotest.(check int)
    "fresh pool means no in-trade hits" 0 ph.pricing.Trader.cache_hits;
  Alcotest.(check bool) "rfb carried traffic" true (msg ph.rfb > 0);
  Alcotest.(check bool)
    "negotiation carried traffic" true (msg ph.negotiation > 0)

let suite =
  ( "transport",
    [
      quick "lockstep and fault-free DES agree" test_lockstep_des_parity;
      quick "bid cache replays offers" test_bid_cache_replays_offers;
      quick "bid cache invalidation" test_bid_cache_invalidation;
      quick "warm trade identical to cold" test_warm_trade_identical;
      quick "same-round request dedup" test_request_dedup;
      quick "standing-offer memo skips re-broadcast" test_standing_offer_memo;
      quick "phase accounting partitions totals" test_phase_accounting;
    ] )
