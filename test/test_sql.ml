module Ast = Qt_sql.Ast
module Lexer = Qt_sql.Lexer
module Parser = Qt_sql.Parser
module Analysis = Qt_sql.Analysis
module Interval = Qt_util.Interval

let quick = Helpers.quick
let parse = Qt_sql.Parser.parse

(* ------------------------------------------------------------------ *)
(* Lexer                                                                *)
(* ------------------------------------------------------------------ *)

let test_lexer_tokens () =
  let toks = Lexer.tokenize "SELECT a.b, 42 <= -7 <> 'x y' ( * )" in
  Alcotest.(check int) "token count" 14 (List.length toks);
  (match toks with
  | Lexer.T_ident "SELECT"
    :: Lexer.T_ident "a"
    :: Lexer.T_dot
    :: Lexer.T_ident "b"
    :: Lexer.T_comma
    :: Lexer.T_int 42
    :: Lexer.T_le
    :: Lexer.T_int (-7)
    :: Lexer.T_ne
    :: Lexer.T_string "x y"
    :: _ ->
    ()
  | _ -> Alcotest.fail "unexpected token stream");
  (match Lexer.tokenize "1.5 >= !=" with
  | [ Lexer.T_float 1.5; Lexer.T_ge; Lexer.T_ne; Lexer.T_eof ] -> ()
  | _ -> Alcotest.fail "floats / != mislexed");
  (* Scientific notation round-trips printed floats. *)
  match Lexer.tokenize "1e-06 2.5E+3 7e2" with
  | [ Lexer.T_float a; Lexer.T_float b; Lexer.T_float c; Lexer.T_eof ] ->
    Alcotest.(check (float 1e-12)) "neg exponent" 1e-6 a;
    Alcotest.(check (float 1e-9)) "pos exponent" 2500. b;
    Alcotest.(check (float 1e-9)) "bare exponent" 700. c
  | _ -> Alcotest.fail "scientific notation mislexed"

let test_lexer_errors () =
  Alcotest.check_raises "unterminated string"
    (Lexer.Error ("unterminated string literal", 0))
    (fun () -> ignore (Lexer.tokenize "'oops"));
  match Lexer.tokenize "a # b" with
  | exception Lexer.Error (_, 2) -> ()
  | exception Lexer.Error (_, p) -> Alcotest.failf "wrong position %d" p
  | _ -> Alcotest.fail "expected error"

(* ------------------------------------------------------------------ *)
(* Parser                                                               *)
(* ------------------------------------------------------------------ *)

let test_parse_simple () =
  let q = parse "SELECT c.custname FROM customer c WHERE c.custid = 5" in
  Alcotest.(check int) "one table" 1 (List.length q.Ast.from);
  Alcotest.(check int) "one conjunct" 1 (List.length q.Ast.where);
  Alcotest.(check bool) "not distinct" false q.Ast.distinct

let test_parse_full () =
  let q =
    parse
      "SELECT DISTINCT c.office, SUM(il.charge), COUNT(*) \
       FROM customer c, invoiceline il \
       WHERE c.custid = il.custid AND c.custid BETWEEN 10 AND 90 AND il.charge > 5 \
       GROUP BY c.office ORDER BY c.office DESC"
  in
  Alcotest.(check bool) "distinct" true q.Ast.distinct;
  Alcotest.(check int) "three items" 3 (List.length q.Ast.select);
  Alcotest.(check int) "three conjuncts" 3 (List.length q.Ast.where);
  Alcotest.(check int) "group" 1 (List.length q.Ast.group_by);
  (match q.Ast.order_by with
  | [ (a, Ast.Desc) ] -> Alcotest.(check string) "order attr" "office" a.Ast.name
  | _ -> Alcotest.fail "order_by wrong")

let test_parse_unqualified_resolution () =
  let q = parse "SELECT custname FROM customer WHERE custid = 1" in
  (match q.Ast.select with
  | [ Ast.Sel_col a ] -> Alcotest.(check string) "resolved" "customer" a.Ast.rel
  | _ -> Alcotest.fail "select shape");
  (* Ambiguous bare column with two tables must fail. *)
  match parse "SELECT custid FROM customer c, invoiceline il" with
  | exception Parser.Error _ -> ()
  | _ -> Alcotest.fail "ambiguity not detected"

let test_parse_errors () =
  let bad =
    [
      "SELECT";
      "SELECT x FROM";
      "SELECT x FROM t WHERE";
      "SELECT x FROM t t2 t3";
      "SELECT x FROM t WHERE x BETWEEN 5 AND 1";
      "SELECT x FROM t WHERE BETWEEN 1 AND 2";
      "SELECT x FROM t, t";
      "SELECT a.x FROM t";
      "FROM t SELECT x";
      "SELECT x FROM t extra garbage ,";
      "SELECT x FROM t WHERE 1 = 2";
      "SELECT x FROM t WHERE 'a' <> 'b'";
    ]
  in
  List.iter
    (fun sql ->
      match Parser.parse_result sql with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "accepted bad SQL: %s" sql)
    bad

let test_parse_alias_star () =
  let q = parse "SELECT t.* FROM t WHERE t.x = 1" in
  match q.Ast.select with
  | [ Ast.Sel_col a ] -> Alcotest.(check string) "star" "*" a.Ast.name
  | _ -> Alcotest.fail "star witness not parsed"

let test_print_parse_roundtrip_cases () =
  let cases =
    [
      "SELECT a.x FROM t a WHERE a.y < 0.000001 AND a.z > 123456.789012";
      "SELECT c.custname FROM customer c";
      "SELECT DISTINCT c.office FROM customer c WHERE c.custid BETWEEN 1 AND 5";
      "SELECT SUM(il.charge), COUNT(*) FROM invoiceline il GROUP BY il.custid";
      "SELECT a.x FROM t a, t b WHERE a.x = b.x AND a.y < 3.5 AND b.z = 'str' \
       ORDER BY a.x DESC";
    ]
  in
  List.iter
    (fun sql ->
      let q = parse sql in
      let q2 = parse (Analysis.to_string q) in
      Helpers.check_query sql q q2)
    cases

(* Random query generator for the roundtrip property. *)
let query_gen =
  QCheck2.Gen.(
    let ident = oneofl [ "alpha"; "beta"; "gamma"; "delta" ] in
    let attr_name = oneofl [ "x"; "y"; "z" ] in
    let* n_tables = int_range 1 3 in
    let tables =
      List.init n_tables (fun i ->
          { Ast.relation = List.nth [ "alpha"; "beta"; "gamma"; "delta" ] i;
            alias = Printf.sprintf "t%d" i })
    in
    let attr_gen =
      let* t = int_range 0 (n_tables - 1) in
      let* name = attr_name in
      return { Ast.rel = (List.nth tables t).Ast.alias; name }
    in
    let lit_gen =
      oneof
        [
          map (fun n -> Ast.L_int n) (int_range (-50) 50);
          map (fun s -> Ast.L_string s) ident;
        ]
    in
    let pred_gen =
      oneof
        [
          (let* a = attr_gen in
           let* b = attr_gen in
           let* op = oneofl [ Ast.Eq; Ast.Lt; Ast.Ge ] in
           return (Ast.Cmp (op, Ast.Col a, Ast.Col b)));
          (let* a = attr_gen in
           let* l = lit_gen in
           return (Ast.Cmp (Ast.Eq, Ast.Col a, Ast.Lit l)));
          (let* a = attr_gen in
           let* lo = int_range (-20) 20 in
           let* w = int_range 0 30 in
           return (Ast.Between (a, lo, lo + w)));
        ]
    in
    let* n_select = int_range 1 3 in
    let* select = list_repeat n_select (map (fun a -> Ast.Sel_col a) attr_gen) in
    let* n_where = int_range 0 3 in
    let* where = list_repeat n_where pred_gen in
    let* order = opt attr_gen in
    return
      {
        Ast.distinct = false;
        select;
        from = tables;
        where;
        group_by = [];
        order_by = (match order with None -> [] | Some a -> [ (a, Ast.Asc) ]);
      })

let prop_print_parse_roundtrip =
  QCheck2.Test.make ~name:"print/parse roundtrip" ~count:300 query_gen (fun q ->
      let text = Analysis.to_string q in
      match Parser.parse_result text with
      | Error e -> QCheck2.Test.fail_reportf "did not reparse %s: %s" text e
      | Ok q2 -> Ast.equal q q2)

(* Fuzz: the parser must never raise anything but Parser.Error. *)
let prop_parser_total =
  let fragment =
    QCheck2.Gen.oneofl
      [
        "SELECT"; "FROM"; "WHERE"; "GROUP"; "ORDER"; "BY"; "AND"; "BETWEEN";
        "t"; "a.b"; ","; "."; "("; ")"; "*"; "="; "<"; ">="; "<>"; "42"; "1.5";
        "'str"; "'str'"; "COUNT"; "SUM"; "-7"; "x";
      ]
  in
  QCheck2.Test.make ~name:"parser totality on token soup" ~count:500
    QCheck2.Gen.(list_size (int_range 0 12) fragment)
    (fun pieces ->
      let input = String.concat " " pieces in
      match Parser.parse_result input with Ok _ | Error _ -> true)

(* ------------------------------------------------------------------ *)
(* Analysis                                                             *)
(* ------------------------------------------------------------------ *)

let join2 =
  parse
    "SELECT c.office, il.charge FROM customer c, invoiceline il \
     WHERE c.custid = il.custid AND c.office = 3 AND il.charge > 10"

let test_analysis_classify () =
  Alcotest.(check (list string)) "aliases" [ "c"; "il" ] (Analysis.aliases join2);
  Alcotest.(check int) "join preds" 1 (List.length (Analysis.join_predicates join2));
  Alcotest.(check int) "selections" 2
    (List.length (Analysis.selection_predicates join2));
  Alcotest.(check bool) "no aggregate" false (Analysis.has_aggregate join2);
  Alcotest.(check int) "edges" 1 (List.length (Analysis.join_graph join2));
  Alcotest.(check bool) "connected" true (Analysis.connected join2 [ "c"; "il" ]);
  Alcotest.(check bool) "singleton connected" true (Analysis.connected join2 [ "c" ]);
  Alcotest.(check bool) "empty not connected" false (Analysis.connected join2 [])

let test_analysis_restrict () =
  let r = Analysis.restrict join2 [ "c" ] in
  Alcotest.(check int) "one table" 1 (List.length r.Ast.from);
  (* Must keep c.office (output) and c.custid (crossing join column). *)
  let names =
    List.filter_map
      (function Ast.Sel_col a -> Some a.Ast.name | Ast.Sel_agg _ -> None)
      r.Ast.select
  in
  Alcotest.(check bool) "office kept" true (List.mem "office" names);
  Alcotest.(check bool) "custid kept" true (List.mem "custid" names);
  Alcotest.(check int) "only c preds" 1 (List.length r.Ast.where);
  (* Restricting to an unknown alias must fail loudly. *)
  match Analysis.restrict join2 [ "nope" ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "restrict accepted unknown alias"

let test_analysis_range_of () =
  let q =
    parse
      "SELECT t.x FROM t WHERE t.x BETWEEN 0 AND 100 AND t.x >= 10 AND t.x < 50"
  in
  let r = Analysis.range_of q { Ast.rel = "t"; name = "x" } in
  Alcotest.(check int) "lo" 10 r.Interval.lo;
  Alcotest.(check int) "hi" 49 r.Interval.hi;
  let unconstrained = Analysis.range_of q { Ast.rel = "t"; name = "y" } in
  Alcotest.(check bool) "full for free attr" true
    (Interval.equal Interval.full unconstrained)

let test_analysis_range_closure () =
  let q =
    parse
      "SELECT a.x FROM t a, t b, t c \
       WHERE a.x = b.x AND b.x = c.x AND a.x BETWEEN 10 AND 90 AND c.x < 50"
  in
  let cls = Analysis.equiv_attrs q { Ast.rel = "b"; name = "x" } in
  Alcotest.(check int) "three-member class" 3 (List.length cls);
  (* b.x itself is unrestricted, but the chain bounds it to [10,49]. *)
  let r = Analysis.range_of_closure q { Ast.rel = "b"; name = "x" } in
  Alcotest.(check int) "closure lo" 10 r.Interval.lo;
  Alcotest.(check int) "closure hi" 49 r.Interval.hi;
  (* Unconnected attribute: closure adds nothing. *)
  let free = Analysis.range_of_closure q { Ast.rel = "a"; name = "y" } in
  Alcotest.(check bool) "free attr stays full" true
    (Interval.equal Interval.full free)

let test_analysis_add_range () =
  let q = parse "SELECT t.x FROM t" in
  let a = { Ast.rel = "t"; name = "x" } in
  let q1 = Analysis.add_range q a (Interval.make 5 9) in
  Alcotest.(check int) "one conjunct" 1 (List.length q1.Ast.where);
  (* Adding a superset of the current range is a no-op. *)
  let q2 = Analysis.add_range q1 a (Interval.make 0 100) in
  Alcotest.(check int) "no-op" 1 (List.length q2.Ast.where)

let test_analysis_normalize () =
  let a = parse "SELECT t.x, t.y FROM t WHERE t.x = 1 AND t.y BETWEEN 2 AND 9" in
  let b = parse "SELECT t.y, t.x FROM t WHERE t.y BETWEEN 2 AND 9 AND t.x = 1" in
  Alcotest.(check bool) "order-insensitive" true (Analysis.equal_semantic a b);
  Alcotest.(check string) "same signature" (Analysis.signature a)
    (Analysis.signature b);
  let c = parse "SELECT t.x FROM t WHERE t.x >= 3 AND t.x <= 7" in
  let d = parse "SELECT t.x FROM t WHERE t.x BETWEEN 3 AND 7" in
  Alcotest.(check bool) "ranges merged" true (Analysis.equal_semantic c d)

let test_analysis_rename () =
  let q = parse "SELECT a.x FROM t a, t b WHERE a.x = b.x" in
  let r = Analysis.rename_aliases [ ("a", "u"); ("b", "w") ] q in
  Alcotest.(check (list string)) "renamed" [ "u"; "w" ] (Analysis.aliases r);
  match r.Ast.where with
  | [ Ast.Cmp (Ast.Eq, Ast.Col x, Ast.Col y) ] ->
    Alcotest.(check string) "lhs" "u" x.Ast.rel;
    Alcotest.(check string) "rhs" "w" y.Ast.rel
  | _ -> Alcotest.fail "predicate not renamed"

let suite =
  ( "sql",
    [
      quick "lexer tokens" test_lexer_tokens;
      quick "lexer errors" test_lexer_errors;
      quick "parse simple" test_parse_simple;
      quick "parse full" test_parse_full;
      quick "parse unqualified" test_parse_unqualified_resolution;
      quick "parse errors" test_parse_errors;
      quick "parse alias star" test_parse_alias_star;
      quick "roundtrip cases" test_print_parse_roundtrip_cases;
      QCheck_alcotest.to_alcotest prop_print_parse_roundtrip;
      QCheck_alcotest.to_alcotest prop_parser_total;
      quick "analysis classify" test_analysis_classify;
      quick "analysis restrict" test_analysis_restrict;
      quick "analysis range_of" test_analysis_range_of;
      quick "analysis range closure" test_analysis_range_closure;
      quick "analysis add_range" test_analysis_add_range;
      quick "analysis normalize" test_analysis_normalize;
      quick "analysis rename" test_analysis_rename;
    ] )
